//! Temporal-importance annotations and preemptive storage reclamation.
//!
//! This crate is the core library of a reproduction of *"Automated Storage
//! Reclamation Using Temporal Importance Annotations"* (Chandra, Gehani,
//! Yu — ICDCS 2007). The paper's idea: content creators annotate each
//! stored object with a **temporal importance function** `L(t)` —
//! monotonically non-increasing, valued in `[0, 1]` — and the storage
//! system evicts less important objects automatically when space runs out,
//! instead of relying on applications to delete data.
//!
//! # The abstraction
//!
//! * [`Importance`] — the scalar comparison metric. Higher current
//!   importance may preempt strictly lower current importance; importance
//!   `1` is never preemptible, importance `0` is freely replaceable.
//! * [`ImportanceCurve`] — the lifetime annotation `L(age)`, including the
//!   paper's headline **two-step** function (a plateau followed by a linear
//!   wane, Fig. 1) plus persistent, fixed-expiry, ephemeral (cache-like),
//!   exponential-wane and general piecewise variants.
//! * [`StorageUnit`] — a capacity-bounded store implementing the
//!   preemptive reclamation engine, the Palimpsest-style FIFO baseline
//!   ([`EvictionPolicy::Fifo`]), admission previews for distributed
//!   placement, expired-object sweeps, and rejuvenation.
//! * [`StorageUnit::importance_density`] — the paper's **storage
//!   importance density** metric: every stored byte scaled by its current
//!   importance, normalized by capacity. It quantifies *which importance
//!   levels the storage is full for* and is the feedback signal content
//!   creators use to pick annotations.
//!
//! # Quickstart
//!
//! ```
//! use sim_core::{ByteSize, SimDuration, SimTime};
//! use temporal_importance::{
//!     Importance, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit,
//! };
//!
//! let mut unit = StorageUnit::new(ByteSize::from_gib(1));
//!
//! // "Definitely important for 15 days, maybe for another 15" (§5.1).
//! let curve = ImportanceCurve::two_step(
//!     Importance::FULL,
//!     SimDuration::from_days(15),
//!     SimDuration::from_days(15),
//! );
//!
//! let spec = ObjectSpec::new(ObjectId::new(0), ByteSize::from_mib(700), curve);
//! let outcome = unit.store(spec, SimTime::ZERO)?;
//! assert!(outcome.evicted.is_empty());
//!
//! // Twenty days in, the object has waned to 1/3 importance and the
//! // density metric reflects it.
//! let later = SimTime::from_days(20);
//! let density = unit.importance_density(later);
//! assert!(density > 0.0 && density < 1.0);
//! # Ok::<(), temporal_importance::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod advisor;
mod curve;
mod density;
mod engine;
mod error;
mod fairness;
mod importance;
mod object;
mod policy;
mod records;
mod unit;

pub mod arena;
pub mod dense;
pub mod protocol;

pub use advisor::{Advisor, Forecast};
pub use curve::{ImportanceCurve, PiecewiseCurve};
pub use density::DensitySnapshot;
pub use error::{CurveError, Error, ImportanceError, RejuvenateError, RestoreError, StoreError};
pub use fairness::{FairStore, FairStoreError, PrincipalId, PrincipalUsage};
pub use importance::Importance;
pub use object::{ObjectClass, ObjectId, ObjectIdGen, ObjectSpec, StoredObject};
pub use policy::EvictionPolicy;
pub use records::{
    Admission, EvictionReason, EvictionRecord, RejectionRecord, StoreOutcome, UnitStats,
};
pub use unit::{StorageUnit, StorageUnitBuilder};

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn public_types_are_send_and_sync() {
        assert_send_sync::<Importance>();
        assert_send_sync::<ImportanceCurve>();
        assert_send_sync::<StorageUnit>();
        assert_send_sync::<ObjectSpec>();
        assert_send_sync::<StoredObject>();
        assert_send_sync::<StoreError>();
        assert_send_sync::<EvictionRecord>();
        assert_send_sync::<DensitySnapshot>();
    }
}
