//! The object model: identifiers, classes, specifications and stored state.

use std::fmt;

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration, SimTime};

use crate::{Importance, ImportanceCurve};

/// A unique object identifier.
///
/// Ids are plain integers; workload generators allocate them monotonically
/// via [`ObjectIdGen`] so every simulated run is reproducible.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ObjectId(u64);

impl ObjectId {
    /// Creates an id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        ObjectId(raw)
    }

    /// The raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// A monotonic [`ObjectId`] allocator.
///
/// # Examples
///
/// ```
/// use temporal_importance::ObjectIdGen;
///
/// let mut ids = ObjectIdGen::new();
/// let a = ids.next_id();
/// let b = ids.next_id();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ObjectIdGen {
    next: u64,
}

impl ObjectIdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        ObjectIdGen::default()
    }

    /// Creates a generator starting at the given raw id, e.g. to partition
    /// id spaces between independent generators.
    pub fn starting_at(raw: u64) -> Self {
        ObjectIdGen { next: raw }
    }

    /// Allocates the next id.
    pub fn next_id(&mut self) -> ObjectId {
        let id = ObjectId(self.next);
        self.next += 1;
        id
    }
}

/// An application-defined object class tag.
///
/// The core engine never interprets classes — they exist so experiments can
/// split results by creator (e.g. university cameras vs. student uploads in
/// §5.2) without the storage layer knowing about lectures.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ObjectClass(u16);

impl ObjectClass {
    /// The default class for objects that don't care.
    pub const GENERIC: ObjectClass = ObjectClass(0);

    /// Creates a class tag from a raw integer.
    pub const fn new(raw: u16) -> Self {
        ObjectClass(raw)
    }

    /// The raw tag value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A request to store an object: everything the creator supplies.
///
/// The tuple `(s, t_a, L)` of §3 — size, arrival time (supplied at the
/// store call), and the lifetime annotation — plus an id and a class tag.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration};
/// use temporal_importance::{Importance, ImportanceCurve, ObjectId, ObjectSpec};
///
/// let spec = ObjectSpec::new(
///     ObjectId::new(1),
///     ByteSize::from_mib(700),
///     ImportanceCurve::two_step(
///         Importance::FULL,
///         SimDuration::from_days(15),
///         SimDuration::from_days(15),
///     ),
/// );
/// assert_eq!(spec.size(), ByteSize::from_mib(700));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectSpec {
    id: ObjectId,
    size: ByteSize,
    curve: ImportanceCurve,
    class: ObjectClass,
}

impl ObjectSpec {
    /// Creates a spec with the [`ObjectClass::GENERIC`] class.
    pub fn new(id: ObjectId, size: ByteSize, curve: ImportanceCurve) -> Self {
        ObjectSpec {
            id,
            size,
            curve,
            class: ObjectClass::GENERIC,
        }
    }

    /// Sets the class tag (builder style).
    #[must_use]
    pub fn with_class(mut self, class: ObjectClass) -> Self {
        self.class = class;
        self
    }

    /// The object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The object size.
    pub fn size(&self) -> ByteSize {
        self.size
    }

    /// The lifetime annotation.
    pub fn curve(&self) -> &ImportanceCurve {
        &self.curve
    }

    /// The class tag.
    pub fn class(&self) -> ObjectClass {
        self.class
    }
}

/// An object resident in a [`StorageUnit`](crate::StorageUnit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredObject {
    id: ObjectId,
    size: ByteSize,
    curve: ImportanceCurve,
    class: ObjectClass,
    arrival: SimTime,
    annotated_at: SimTime,
}

impl StoredObject {
    /// The resident state a [`StorageUnit`](crate::StorageUnit) records
    /// when admitting `spec` at `now`: arrival and annotation age both
    /// start at the store instant. Public so arena tooling and property
    /// tests can mint residents without driving a whole unit.
    pub fn from_spec(spec: ObjectSpec, now: SimTime) -> Self {
        StoredObject {
            id: spec.id,
            size: spec.size,
            curve: spec.curve,
            class: spec.class,
            arrival: now,
            annotated_at: now,
        }
    }

    /// The object id.
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The object size.
    pub fn size(&self) -> ByteSize {
        self.size
    }

    /// The active lifetime annotation.
    pub fn curve(&self) -> &ImportanceCurve {
        &self.curve
    }

    /// The class tag.
    pub fn class(&self) -> ObjectClass {
        self.class
    }

    /// When the object entered the store.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// When the active annotation was applied (equals [`arrival`] unless
    /// the object was rejuvenated).
    ///
    /// [`arrival`]: StoredObject::arrival
    pub fn annotated_at(&self) -> SimTime {
        self.annotated_at
    }

    /// Age of the active annotation at `now`.
    pub fn annotation_age(&self, now: SimTime) -> SimDuration {
        now.saturating_since(self.annotated_at)
    }

    /// The object's current importance at `now`.
    pub fn current_importance(&self, now: SimTime) -> Importance {
        self.curve.importance_at(self.annotation_age(now))
    }

    /// Remaining time until the annotation expires, if it ever does.
    pub fn remaining_lifetime(&self, now: SimTime) -> Option<SimDuration> {
        self.curve
            .expiry()
            .map(|e| e.saturating_sub(self.annotation_age(now)))
    }

    /// True if the annotation has expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        self.curve.is_expired(self.annotation_age(now))
    }

    pub(crate) fn rejuvenate(&mut self, curve: ImportanceCurve, now: SimTime) {
        self.curve = curve;
        self.annotated_at = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn spec() -> ObjectSpec {
        ObjectSpec::new(
            ObjectId::new(7),
            ByteSize::from_mib(100),
            ImportanceCurve::two_step(
                Importance::FULL,
                SimDuration::from_days(10),
                SimDuration::from_days(10),
            ),
        )
    }

    #[test]
    fn id_gen_is_monotonic() {
        let mut g = ObjectIdGen::new();
        let ids: Vec<u64> = (0..5).map(|_| g.next_id().raw()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        let mut g = ObjectIdGen::starting_at(100);
        assert_eq!(g.next_id(), ObjectId::new(100));
    }

    #[test]
    fn spec_accessors_and_class_builder() {
        let s = spec().with_class(ObjectClass::new(3));
        assert_eq!(s.id(), ObjectId::new(7));
        assert_eq!(s.class(), ObjectClass::new(3));
        assert_eq!(s.class().to_string(), "class#3");
        assert_eq!(s.id().to_string(), "obj#7");
    }

    #[test]
    fn stored_object_tracks_age_and_importance() {
        let arrived = SimTime::from_days(100);
        let obj = StoredObject::from_spec(spec(), arrived);
        assert_eq!(obj.arrival(), arrived);
        assert_eq!(obj.current_importance(arrived), Importance::FULL);
        let mid_wane = arrived + SimDuration::from_days(15);
        assert_eq!(obj.current_importance(mid_wane).value(), 0.5);
        assert!(obj.is_expired(arrived + SimDuration::from_days(20)));
        assert_eq!(
            obj.remaining_lifetime(arrived + SimDuration::from_days(5)),
            Some(SimDuration::from_days(15))
        );
        assert_eq!(
            obj.remaining_lifetime(arrived + SimDuration::from_days(25)),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn rejuvenation_resets_annotation_age_not_arrival() {
        let arrived = SimTime::from_days(0);
        let mut obj = StoredObject::from_spec(spec(), arrived);
        let later = SimTime::from_days(19);
        assert!(obj.current_importance(later) < Importance::FULL);
        obj.rejuvenate(
            ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
            later,
        );
        assert_eq!(obj.arrival(), arrived);
        assert_eq!(obj.annotated_at(), later);
        assert_eq!(obj.current_importance(later), Importance::FULL);
        assert!(obj.is_expired(later + SimDuration::from_days(30)));
    }
}
