//! Temporal importance curves: `L(t)`.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

use crate::error::CurveError;
use crate::Importance;

/// A temporal importance function `L(age)`: monotonically non-increasing,
/// valued in `[0, 1]` (§3 of the paper).
///
/// The curve is evaluated against the object's *age* — time since the
/// annotation was applied — not wall-clock time, so an annotation is a pure
/// value that travels with the object.
///
/// The variants cover every lifetime function the paper discusses:
///
/// * [`Persistent`](ImportanceCurve::Persistent) — traditional storage,
///   `L(t) = 1`, never expires.
/// * [`Fixed`](ImportanceCurve::Fixed) — "no temporal degradation":
///   constant importance until a hard expiry (Douglis et al.'s
///   fixed-priority expiration).
/// * [`Ephemeral`](ImportanceCurve::Ephemeral) — Palimpsest / web-cache
///   degradation: importance zero from the outset, freely replaceable.
/// * [`TwoStep`](ImportanceCurve::TwoStep) — the paper's headline
///   abstraction (Fig. 1): plateau `p` for `persist`, then linear decay over
///   `wane` to zero.
/// * [`ExpDecay`](ImportanceCurve::ExpDecay) — exponential wane, for the
///   decay-shape ablation the paper gestures at ("could be linear,
///   exponential or some other function").
/// * [`Piecewise`](ImportanceCurve::Piecewise) — a general monotone
///   non-increasing polyline.
///
/// # Examples
///
/// ```
/// use sim_core::SimDuration;
/// use temporal_importance::{Importance, ImportanceCurve};
///
/// // "Definitely important for 15 days, might be for another 15, probably
/// // not after 30" (§5.1).
/// let curve = ImportanceCurve::two_step(
///     Importance::FULL,
///     SimDuration::from_days(15),
///     SimDuration::from_days(15),
/// );
/// assert_eq!(curve.importance_at(SimDuration::from_days(10)), Importance::FULL);
/// assert_eq!(curve.importance_at(SimDuration::from_days(30)), Importance::ZERO);
/// assert_eq!(curve.expiry(), Some(SimDuration::from_days(30)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ImportanceCurve {
    /// Traditional persistent storage: `L(t) = 1`, `t_expire = ∞`.
    Persistent,
    /// Constant importance until a hard expiry, zero afterwards.
    Fixed {
        /// The plateau importance.
        importance: Importance,
        /// Age at which the object expires.
        expiry: SimDuration,
    },
    /// Always importance zero — cache/Palimpsest-style data that any object
    /// may replace.
    Ephemeral,
    /// The two-piece function of Fig. 1: plateau then linear wane.
    TwoStep {
        /// Plateau importance `p`.
        importance: Importance,
        /// Plateau length `t_persist`.
        persist: SimDuration,
        /// Linear-decay length `t_wane`; expiry is `persist + wane`.
        wane: SimDuration,
    },
    /// Plateau then exponential decay with the given half-life, truncated to
    /// zero at `persist + wane` so the object still has a finite expiry.
    ExpDecay {
        /// Plateau importance `p`.
        importance: Importance,
        /// Plateau length.
        persist: SimDuration,
        /// Decay window; importance is cut to zero at `persist + wane`.
        wane: SimDuration,
        /// Half-life of the decay within the window.
        half_life: SimDuration,
    },
    /// A general monotone non-increasing polyline.
    Piecewise(PiecewiseCurve),
}

impl ImportanceCurve {
    /// Convenience constructor for the paper's two-step function.
    pub fn two_step(importance: Importance, persist: SimDuration, wane: SimDuration) -> Self {
        ImportanceCurve::TwoStep {
            importance,
            persist,
            wane,
        }
    }

    /// Convenience constructor for a fixed-expiry, full-importance curve —
    /// the paper's "lifetime policy without a temporal importance
    /// component" (`L(t) = 1`, `t_expire = expiry`).
    pub fn fixed_lifetime(expiry: SimDuration) -> Self {
        ImportanceCurve::Fixed {
            importance: Importance::FULL,
            expiry,
        }
    }

    /// Constructs an exponential-wane curve.
    ///
    /// # Errors
    ///
    /// Returns [`CurveError::ZeroHalfLife`] if `half_life` is zero.
    pub fn exp_decay(
        importance: Importance,
        persist: SimDuration,
        wane: SimDuration,
        half_life: SimDuration,
    ) -> Result<Self, CurveError> {
        if half_life.is_zero() {
            return Err(CurveError::ZeroHalfLife);
        }
        Ok(ImportanceCurve::ExpDecay {
            importance,
            persist,
            wane,
            half_life,
        })
    }

    /// The importance of an object of the given `age` under this curve.
    pub fn importance_at(&self, age: SimDuration) -> Importance {
        match self {
            ImportanceCurve::Persistent => Importance::FULL,
            ImportanceCurve::Fixed { importance, expiry } => {
                if age < *expiry {
                    *importance
                } else {
                    Importance::ZERO
                }
            }
            ImportanceCurve::Ephemeral => Importance::ZERO,
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            } => {
                if age <= *persist {
                    *importance
                } else {
                    let into_wane = age - *persist;
                    if wane.is_zero() || into_wane >= *wane {
                        Importance::ZERO
                    } else {
                        let remaining = 1.0 - into_wane.ratio(*wane);
                        Importance::new_clamped(importance.value() * remaining)
                    }
                }
            }
            ImportanceCurve::ExpDecay {
                importance,
                persist,
                wane,
                half_life,
            } => {
                if age <= *persist {
                    *importance
                } else {
                    let into_wane = age - *persist;
                    if wane.is_zero() || into_wane >= *wane {
                        Importance::ZERO
                    } else {
                        let halves = into_wane.ratio(*half_life);
                        Importance::new_clamped(importance.value() * 0.5_f64.powf(halves))
                    }
                }
            }
            ImportanceCurve::Piecewise(curve) => curve.importance_at(age),
        }
    }

    /// The age at which the curve reaches zero and stays there
    /// (`t_expire`), or `None` if the object never expires.
    ///
    /// An expiry of `Some(d)` means `importance_at(age) == 0` for all
    /// `age >= d`. Note that expiry does not force deletion: "objects need
    /// not be deleted at the end of `t_expire`; rather, the system makes no
    /// guarantees on object availability after this duration" (§3).
    pub fn expiry(&self) -> Option<SimDuration> {
        match self {
            ImportanceCurve::Persistent => None,
            ImportanceCurve::Fixed { importance, expiry } => {
                if importance.is_zero() {
                    Some(SimDuration::ZERO)
                } else {
                    Some(*expiry)
                }
            }
            ImportanceCurve::Ephemeral => Some(SimDuration::ZERO),
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            }
            | ImportanceCurve::ExpDecay {
                importance,
                persist,
                wane,
                ..
            } => {
                if importance.is_zero() {
                    Some(SimDuration::ZERO)
                } else {
                    Some(*persist + *wane)
                }
            }
            ImportanceCurve::Piecewise(curve) => curve.expiry(),
        }
    }

    /// The importance at age zero.
    pub fn initial_importance(&self) -> Importance {
        self.importance_at(SimDuration::ZERO)
    }

    /// True if an object of the given age has expired under this curve.
    pub fn is_expired(&self, age: SimDuration) -> bool {
        match self.expiry() {
            Some(e) => age >= e,
            None => false,
        }
    }

    /// The analytic piece of the curve active at `age`: its closed form and
    /// the age at which the next piece begins. Segments are half-open
    /// `[start, next)`; `next` is always strictly greater than `age`.
    ///
    /// This is the breakpoint-iteration primitive of the incremental
    /// reclamation engine: it lets the engine schedule one queue event per
    /// breakpoint instead of re-evaluating every curve on every query.
    ///
    /// The forms agree with [`importance_at`](Self::importance_at) at every
    /// age within the segment up to floating-point evaluation order; at ages
    /// where the curve is discontinuous (a hard expiry step) the segment
    /// holding `age` carries the value `importance_at(age)` returns.
    pub(crate) fn segment_at(&self, age: SimDuration) -> CurveSegment {
        match self {
            ImportanceCurve::Persistent => CurveSegment::constant(1.0, None),
            ImportanceCurve::Fixed { importance, expiry } => {
                if importance.is_zero() || age >= *expiry {
                    CurveSegment::constant(0.0, None)
                } else {
                    CurveSegment::constant(importance.value(), Some(*expiry))
                }
            }
            ImportanceCurve::Ephemeral => CurveSegment::constant(0.0, None),
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            } => {
                if importance.is_zero() {
                    return CurveSegment::constant(0.0, None);
                }
                let expiry = *persist + *wane;
                if age <= *persist {
                    // The plateau holds through `persist` inclusive. At
                    // age == persist with a positive wane the wane segment
                    // evaluates to the plateau value, so hand over to it
                    // immediately (keeping `next > age`); with a zero wane
                    // the curve steps to zero one minute after the plateau.
                    if age == *persist && !wane.is_zero() {
                        CurveSegment {
                            form: SegmentForm::Linear {
                                a0: *persist,
                                v0: importance.value(),
                                a1: expiry,
                                v1: 0.0,
                            },
                            next: Some(expiry),
                        }
                    } else {
                        let next = if wane.is_zero() {
                            *persist + SimDuration::MINUTE
                        } else {
                            *persist
                        };
                        CurveSegment::constant(importance.value(), Some(next))
                    }
                } else if age < expiry {
                    CurveSegment {
                        form: SegmentForm::Linear {
                            a0: *persist,
                            v0: importance.value(),
                            a1: expiry,
                            v1: 0.0,
                        },
                        next: Some(expiry),
                    }
                } else {
                    CurveSegment::constant(0.0, None)
                }
            }
            ImportanceCurve::ExpDecay {
                importance,
                persist,
                wane,
                half_life,
            } => {
                if importance.is_zero() {
                    return CurveSegment::constant(0.0, None);
                }
                let expiry = *persist + *wane;
                if age <= *persist {
                    if age == *persist && !wane.is_zero() {
                        CurveSegment {
                            form: SegmentForm::Exp {
                                start: *persist,
                                peak: importance.value(),
                                half_life: *half_life,
                            },
                            next: Some(expiry),
                        }
                    } else {
                        let next = if wane.is_zero() {
                            *persist + SimDuration::MINUTE
                        } else {
                            *persist
                        };
                        CurveSegment::constant(importance.value(), Some(next))
                    }
                } else if age < expiry {
                    CurveSegment {
                        form: SegmentForm::Exp {
                            start: *persist,
                            peak: importance.value(),
                            half_life: *half_life,
                        },
                        next: Some(expiry),
                    }
                } else {
                    CurveSegment::constant(0.0, None)
                }
            }
            ImportanceCurve::Piecewise(curve) => curve.segment_at(age),
        }
    }
}

/// One analytic piece of an [`ImportanceCurve`], as returned by
/// [`ImportanceCurve::segment_at`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CurveSegment {
    /// The closed form over the segment.
    pub form: SegmentForm,
    /// First age strictly greater than the queried age at which the form
    /// changes, or `None` if this form holds forever.
    pub next: Option<SimDuration>,
}

impl CurveSegment {
    fn constant(value: f64, next: Option<SimDuration>) -> Self {
        CurveSegment {
            form: SegmentForm::Constant(value),
            next,
        }
    }
}

/// The closed form of a [`CurveSegment`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SegmentForm {
    /// `value(age) = c`.
    Constant(f64),
    /// Linear between `(a0, v0)` and `(a1, v1)`:
    /// `value(age) = v0 + (v1 - v0) · (age - a0) / (a1 - a0)`.
    Linear {
        /// Segment start age.
        a0: SimDuration,
        /// Value at `a0`.
        v0: f64,
        /// Segment end age (`a1 > a0`).
        a1: SimDuration,
        /// Value at `a1`.
        v1: f64,
    },
    /// Exponential decay: `value(age) = peak · 0.5^((age - start) / half_life)`.
    Exp {
        /// Age the decay starts from (value `peak` there).
        start: SimDuration,
        /// Value at `start`.
        peak: f64,
        /// Decay half-life (non-zero by construction).
        half_life: SimDuration,
    },
}

impl SegmentForm {
    /// Evaluates the form at an age (which should lie within the segment).
    pub(crate) fn value_at(&self, age: SimDuration) -> f64 {
        match *self {
            SegmentForm::Constant(c) => c,
            SegmentForm::Linear { a0, v0, a1, v1 } => {
                let frac = age.saturating_sub(a0).ratio(a1 - a0);
                v0 + (v1 - v0) * frac
            }
            SegmentForm::Exp {
                start,
                peak,
                half_life,
            } => {
                let halves = age.saturating_sub(start).ratio(half_life);
                peak * 0.5_f64.powf(halves)
            }
        }
    }
}

/// A general monotone non-increasing polyline curve.
///
/// Points are `(age, importance)` pairs; importance is linearly
/// interpolated between consecutive points and constant after the last one.
///
/// # Examples
///
/// ```
/// use sim_core::SimDuration;
/// use temporal_importance::{Importance, PiecewiseCurve};
///
/// let curve = PiecewiseCurve::new(vec![
///     (SimDuration::ZERO, Importance::FULL),
///     (SimDuration::from_days(10), Importance::new(0.5)?),
///     (SimDuration::from_days(20), Importance::ZERO),
/// ])?;
/// assert_eq!(curve.importance_at(SimDuration::from_days(5)).value(), 0.75);
/// assert_eq!(curve.expiry(), Some(SimDuration::from_days(20)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "Vec<(SimDuration, Importance)>")]
pub struct PiecewiseCurve {
    points: Vec<(SimDuration, Importance)>,
}

impl PiecewiseCurve {
    /// Builds a validated piecewise curve.
    ///
    /// # Errors
    ///
    /// Returns a [`CurveError`] if `points` is empty, does not start at age
    /// zero, has non-strictly-increasing ages, or has importance values
    /// that increase with age.
    pub fn new(points: Vec<(SimDuration, Importance)>) -> Result<Self, CurveError> {
        if points.is_empty() {
            return Err(CurveError::Empty);
        }
        if points[0].0 != SimDuration::ZERO {
            return Err(CurveError::MissingOrigin);
        }
        for (i, window) in points.windows(2).enumerate() {
            if window[1].0 <= window[0].0 {
                return Err(CurveError::NonIncreasingAges { index: i + 1 });
            }
            if window[1].1 > window[0].1 {
                return Err(CurveError::IncreasingImportance { index: i + 1 });
            }
        }
        Ok(PiecewiseCurve { points })
    }

    /// The validated control points.
    pub fn points(&self) -> &[(SimDuration, Importance)] {
        &self.points
    }

    /// Importance at the given age (linear interpolation, constant tail).
    pub fn importance_at(&self, age: SimDuration) -> Importance {
        let points = &self.points;
        let last = points.len() - 1;
        if age >= points[last].0 {
            return points[last].1;
        }
        // Find the segment containing `age`. `age < points[last].0` and
        // `age >= points[0].0 == 0`, so a containing segment exists.
        let idx = match points.binary_search_by(|(a, _)| a.cmp(&age)) {
            Ok(i) => return points[i].1,
            Err(i) => i - 1,
        };
        let (a0, i0) = points[idx];
        let (a1, i1) = points[idx + 1];
        let frac = (age - a0).ratio(a1 - a0);
        Importance::new_clamped(i0.value() + (i1.value() - i0.value()) * frac)
    }

    /// The analytic piece active at `age` (see
    /// [`ImportanceCurve::segment_at`]).
    pub(crate) fn segment_at(&self, age: SimDuration) -> CurveSegment {
        let points = &self.points;
        let last = points.len() - 1;
        if age >= points[last].0 {
            return CurveSegment::constant(points[last].1.value(), None);
        }
        let idx = match points.binary_search_by(|(a, _)| a.cmp(&age)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (a0, i0) = points[idx];
        let (a1, i1) = points[idx + 1];
        if i0 == i1 {
            CurveSegment::constant(i0.value(), Some(a1))
        } else {
            CurveSegment {
                form: SegmentForm::Linear {
                    a0,
                    v0: i0.value(),
                    a1,
                    v1: i1.value(),
                },
                next: Some(a1),
            }
        }
    }

    /// The age at which the curve first reaches zero and stays there, or
    /// `None` if its final value is positive (never expires).
    pub fn expiry(&self) -> Option<SimDuration> {
        let last = *self.points.last().expect("validated non-empty");
        if !last.1.is_zero() {
            return None;
        }
        // Walk back to the first point where the curve hits zero; the
        // segment entering it determines the exact crossing age.
        let mut expiry = last.0;
        for window in self.points.windows(2).rev() {
            let (a0, i0) = window[0];
            let (a1, i1) = window[1];
            if !i1.is_zero() {
                break;
            }
            if i0.is_zero() {
                expiry = a0;
            } else {
                // Linear segment from positive i0 down to 0 at a1.
                expiry = a1;
                break;
            }
        }
        Some(expiry)
    }
}

impl TryFrom<Vec<(SimDuration, Importance)>> for PiecewiseCurve {
    type Error = CurveError;

    fn try_from(points: Vec<(SimDuration, Importance)>) -> Result<Self, Self::Error> {
        PiecewiseCurve::new(points)
    }
}

impl From<PiecewiseCurve> for ImportanceCurve {
    fn from(curve: PiecewiseCurve) -> Self {
        ImportanceCurve::Piecewise(curve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn days(d: u64) -> SimDuration {
        SimDuration::from_days(d)
    }

    fn imp(v: f64) -> Importance {
        Importance::new(v).unwrap()
    }

    #[test]
    fn persistent_never_expires() {
        let c = ImportanceCurve::Persistent;
        assert_eq!(
            c.importance_at(SimDuration::from_days(100_000)),
            Importance::FULL
        );
        assert_eq!(c.expiry(), None);
        assert!(!c.is_expired(SimDuration::from_days(100_000)));
    }

    #[test]
    fn ephemeral_is_born_expired() {
        let c = ImportanceCurve::Ephemeral;
        assert_eq!(c.importance_at(SimDuration::ZERO), Importance::ZERO);
        assert_eq!(c.expiry(), Some(SimDuration::ZERO));
        assert!(c.is_expired(SimDuration::ZERO));
    }

    #[test]
    fn fixed_steps_to_zero_at_expiry() {
        let c = ImportanceCurve::fixed_lifetime(days(30));
        assert_eq!(c.importance_at(days(29)), Importance::FULL);
        assert_eq!(c.importance_at(days(30)), Importance::ZERO);
        assert_eq!(c.expiry(), Some(days(30)));
        assert_eq!(c.initial_importance(), Importance::FULL);
    }

    #[test]
    fn two_step_matches_figure_1() {
        let c = ImportanceCurve::two_step(imp(0.8), days(10), days(20));
        // Plateau.
        assert_eq!(c.importance_at(SimDuration::ZERO), imp(0.8));
        assert_eq!(c.importance_at(days(10)), imp(0.8));
        // Mid-wane: halfway through the wane, half the plateau left.
        let mid = c.importance_at(days(20));
        assert!((mid.value() - 0.4).abs() < 1e-12, "got {mid}");
        // Expired.
        assert_eq!(c.importance_at(days(30)), Importance::ZERO);
        assert_eq!(c.expiry(), Some(days(30)));
    }

    #[test]
    fn two_step_with_zero_wane_is_a_step() {
        let c = ImportanceCurve::two_step(Importance::FULL, days(5), SimDuration::ZERO);
        assert_eq!(c.importance_at(days(5)), Importance::FULL);
        assert_eq!(
            c.importance_at(days(5) + SimDuration::MINUTE),
            Importance::ZERO
        );
        assert_eq!(c.expiry(), Some(days(5)));
    }

    #[test]
    fn two_step_with_zero_plateau_importance_expires_immediately() {
        let c = ImportanceCurve::two_step(Importance::ZERO, days(5), days(5));
        assert_eq!(c.expiry(), Some(SimDuration::ZERO));
        assert!(c.is_expired(SimDuration::ZERO));
    }

    #[test]
    fn two_step_monotone_over_dense_samples() {
        let c = ImportanceCurve::two_step(imp(0.9), days(7), days(21));
        let mut prev = Importance::FULL;
        for m in 0..(28 * 24 * 60) {
            let now = c.importance_at(SimDuration::from_minutes(m * 60));
            assert!(now <= prev, "curve increased at minute {m}");
            prev = now;
        }
    }

    #[test]
    fn exp_decay_halves_per_half_life() {
        let c = ImportanceCurve::exp_decay(Importance::FULL, days(0), days(40), days(10)).unwrap();
        let at10 = c.importance_at(days(10)).value();
        let at20 = c.importance_at(days(20)).value();
        assert!((at10 - 0.5).abs() < 1e-12);
        assert!((at20 - 0.25).abs() < 1e-12);
        assert_eq!(c.importance_at(days(40)), Importance::ZERO);
        assert_eq!(c.expiry(), Some(days(40)));
    }

    #[test]
    fn exp_decay_rejects_zero_half_life() {
        assert_eq!(
            ImportanceCurve::exp_decay(Importance::FULL, days(1), days(1), SimDuration::ZERO),
            Err(CurveError::ZeroHalfLife)
        );
    }

    #[test]
    fn piecewise_validation_catches_bad_inputs() {
        assert_eq!(PiecewiseCurve::new(vec![]), Err(CurveError::Empty));
        assert_eq!(
            PiecewiseCurve::new(vec![(days(1), Importance::FULL)]),
            Err(CurveError::MissingOrigin)
        );
        assert_eq!(
            PiecewiseCurve::new(vec![
                (SimDuration::ZERO, Importance::FULL),
                (SimDuration::ZERO, Importance::ZERO),
            ]),
            Err(CurveError::NonIncreasingAges { index: 1 })
        );
        assert_eq!(
            PiecewiseCurve::new(vec![(SimDuration::ZERO, imp(0.5)), (days(1), imp(0.9)),]),
            Err(CurveError::IncreasingImportance { index: 1 })
        );
    }

    #[test]
    fn piecewise_interpolates_linearly() {
        let c = PiecewiseCurve::new(vec![
            (SimDuration::ZERO, Importance::FULL),
            (days(10), imp(0.5)),
            (days(20), Importance::ZERO),
        ])
        .unwrap();
        assert_eq!(c.importance_at(days(5)).value(), 0.75);
        assert_eq!(c.importance_at(days(10)).value(), 0.5);
        assert_eq!(c.importance_at(days(15)).value(), 0.25);
        assert_eq!(c.importance_at(days(25)), Importance::ZERO);
    }

    #[test]
    fn piecewise_constant_tail_never_expires_when_positive() {
        let c = PiecewiseCurve::new(vec![
            (SimDuration::ZERO, Importance::FULL),
            (days(10), imp(0.3)),
        ])
        .unwrap();
        assert_eq!(c.importance_at(days(1000)), imp(0.3));
        assert_eq!(c.expiry(), None);
    }

    #[test]
    fn piecewise_expiry_finds_zero_crossing() {
        // Reaches zero at day 20 via a linear segment, stays zero after.
        let c = PiecewiseCurve::new(vec![
            (SimDuration::ZERO, Importance::FULL),
            (days(20), Importance::ZERO),
            (days(30), Importance::ZERO),
        ])
        .unwrap();
        assert_eq!(c.expiry(), Some(days(20)));

        // Immediately zero everywhere.
        let c = PiecewiseCurve::new(vec![
            (SimDuration::ZERO, Importance::ZERO),
            (days(30), Importance::ZERO),
        ])
        .unwrap();
        assert_eq!(c.expiry(), Some(SimDuration::ZERO));
    }

    #[test]
    fn two_step_equivalences_from_section_3() {
        // "can represent the no temporal degradation policy if t_expire = t_c"
        let fixed_like = ImportanceCurve::two_step(Importance::FULL, days(30), SimDuration::ZERO);
        let fixed = ImportanceCurve::fixed_lifetime(days(30));
        for d in [0u64, 15, 29, 31] {
            assert_eq!(
                fixed_like.importance_at(days(d)) == Importance::ZERO,
                fixed.importance_at(days(d)) == Importance::ZERO,
            );
        }
        // "can also represent the cache like degradation if t_expire = 0"
        let cache_like =
            ImportanceCurve::two_step(Importance::FULL, SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(cache_like.expiry(), Some(SimDuration::ZERO));
    }
}
