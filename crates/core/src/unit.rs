//! A single storage unit with the temporal-importance reclamation engine.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, Obs, SimTime};

use crate::arena::ObjectArena;
use crate::engine::{EngineIndex, EvictionKey};
use crate::error::{RejuvenateError, RestoreError, StoreError};
use crate::records::{
    Admission, EvictionReason, EvictionRecord, RejectionRecord, StoreOutcome, UnitStats,
};
use crate::{EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectSpec, StoredObject};

/// A storage unit of fixed capacity holding temporally-annotated objects.
///
/// This is the paper's core mechanism (§3): objects carry an importance
/// curve, and an incoming object may preempt stored objects of strictly
/// lower *current* importance. The unit appears **full** to an object when
/// even preempting every strictly-less-important object would not make
/// room — so fullness is relative to importance, which is what the
/// [storage importance density](StorageUnit::importance_density) metric
/// quantifies.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration, SimTime};
/// use temporal_importance::{
///     Importance, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit,
/// };
///
/// let mut unit = StorageUnit::new(ByteSize::from_mib(100));
/// let curve = ImportanceCurve::two_step(
///     Importance::FULL,
///     SimDuration::from_days(15),
///     SimDuration::from_days(15),
/// );
/// let spec = ObjectSpec::new(ObjectId::new(0), ByteSize::from_mib(60), curve);
/// let outcome = unit.store(spec, SimTime::ZERO)?;
/// assert!(outcome.evicted.is_empty());
/// assert_eq!(unit.used(), ByteSize::from_mib(60));
/// # Ok::<(), temporal_importance::StoreError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StorageUnit {
    capacity: ByteSize,
    used: ByteSize,
    policy: EvictionPolicy,
    objects: ObjectArena,
    stats: UnitStats,
    evictions: Vec<EvictionRecord>,
    rejections: Vec<RejectionRecord>,
    recording: bool,
    /// Incremental candidate/density indexes; derived state, rebuilt on
    /// demand after deserialization.
    #[serde(skip)]
    index: EngineIndex,
    /// Reusable planning/sweep buffers so steady-state churn allocates
    /// nothing per operation.
    #[serde(skip)]
    scratch: PlanScratch,
    /// Last `engine.breakpoint_queue` depth reported; the gauge is a level,
    /// so repeats are elided (observationally identical, far fewer sink
    /// touches under churn).
    #[serde(skip)]
    last_queue_depth: Option<u64>,
    /// When set, the unit bypasses the indexes and answers every query by
    /// scanning all objects — the reference oracle for differential tests.
    #[serde(skip)]
    naive: bool,
    /// Instrumentation handle. Never touches functional state: outcomes
    /// are byte-identical with or without an observer attached.
    /// Deserialized units come back silent (re-attach explicitly).
    #[serde(skip)]
    obs: Obs,
}

/// Builds a [`StorageUnit`], the single construction path for every
/// configuration: policy, the naive scan oracle, record keeping, and the
/// observability hook.
///
/// # Examples
///
/// ```
/// use sim_core::ByteSize;
/// use temporal_importance::{EvictionPolicy, StorageUnit};
///
/// let unit = StorageUnit::builder(ByteSize::from_gib(1))
///     .policy(EvictionPolicy::Fifo)
///     .recording(false)
///     .build();
/// assert_eq!(unit.policy(), EvictionPolicy::Fifo);
/// ```
#[derive(Debug, Clone)]
#[must_use = "call .build() to create the unit"]
pub struct StorageUnitBuilder {
    capacity: ByteSize,
    policy: EvictionPolicy,
    naive: bool,
    recording: bool,
    obs: Option<Obs>,
}

impl StorageUnitBuilder {
    /// Sets the eviction policy (default: [`EvictionPolicy::Preemptive`],
    /// the paper's mechanism).
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// When true, the unit answers every query with full scans instead of
    /// the incremental indexes — the executable specification of the
    /// reclamation semantics, driven in lockstep with an indexed unit by
    /// the differential tests. Every operation is `O(n)` or worse; not for
    /// production use.
    pub fn naive_oracle(mut self, naive: bool) -> Self {
        self.naive = naive;
        self
    }

    /// Enables or disables per-event eviction/rejection records (default:
    /// on). Large multi-node simulations that only need aggregate
    /// [`stats`](StorageUnit::stats) turn this off.
    pub fn recording(mut self, recording: bool) -> Self {
        self.recording = recording;
        self
    }

    /// Attaches an explicit observer. Without this, the unit observes into
    /// [`Obs::global`] — silent unless a global observer is installed.
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Builds the unit, empty.
    pub fn build(self) -> StorageUnit {
        StorageUnit {
            capacity: self.capacity,
            used: ByteSize::ZERO,
            policy: self.policy,
            objects: ObjectArena::new(),
            stats: UnitStats::default(),
            evictions: Vec::new(),
            rejections: Vec::new(),
            recording: self.recording,
            index: EngineIndex::for_policy(self.policy),
            scratch: PlanScratch::default(),
            last_queue_depth: None,
            naive: self.naive,
            obs: self.obs.unwrap_or_else(Obs::global),
        }
    }

    /// Builds the unit from externally persisted state: the lifetime
    /// counters plus every live object, exactly as a durable backend
    /// recovers them from its log.
    ///
    /// The restored unit is indistinguishable from one that arrived at the
    /// same `(stats, objects)` through live operations with per-event
    /// recording off: occupancy is recomputed from the objects, and the
    /// incremental indexes rebuild lazily on the next
    /// [`advance`](StorageUnit::advance) (exactly as after
    /// deserialization). Per-event eviction/rejection records are not
    /// restored — aggregate history lives in `stats`.
    ///
    /// # Errors
    ///
    /// [`RestoreError::DuplicateId`] when two objects share an id and
    /// [`RestoreError::OverCapacity`] when the objects outgrow the
    /// capacity — both mean the persisted state, not this unit, is
    /// corrupt.
    pub fn restore(
        self,
        stats: UnitStats,
        objects: impl IntoIterator<Item = StoredObject>,
    ) -> Result<StorageUnit, RestoreError> {
        let mut unit = self.build();
        for object in objects {
            if unit.objects.contains(object.id()) {
                return Err(RestoreError::DuplicateId(object.id()));
            }
            let used = unit.used + object.size();
            if used > unit.capacity {
                return Err(RestoreError::OverCapacity {
                    used,
                    capacity: unit.capacity,
                });
            }
            unit.used = used;
            unit.objects.insert(object);
        }
        unit.stats = stats;
        Ok(unit)
    }
}

/// Reusable buffers for planning and sweeping. Victim lists and the k-way
/// merge heap live here across operations, so a steady churn of stores
/// reuses their capacity instead of allocating per call.
///
/// Merge entries are `(key, expired, stream, resume, slot)`. With a dozen
/// or so candidate streams and most plans consuming one or two victims, a
/// flat array scanned for its minimum beats a binary heap: seeding is
/// plain appends and each extraction is a short, branch-predictable pass
/// over one cache line per stream.
#[derive(Debug, Clone, Default)]
struct PlanScratch {
    victims: Vec<ObjectId>,
    heads: Vec<(EvictionKey, bool, usize, usize, u32)>,
    sweep_ids: Vec<ObjectId>,
}

/// A preemption plan computed by [`StorageUnit::plan`]; the victim ids live
/// in the [`PlanScratch`] the plan was computed into.
#[derive(Debug)]
struct Plan {
    freed: ByteSize,
    highest: Option<Importance>,
}

#[derive(Debug)]
enum PlanResult {
    Admit(Plan),
    Full {
        blocking: Option<Importance>,
        /// Victim bytes that *could* be freed for this importance level
        /// (excluding already-free space), folded into the plan so a full
        /// store needs no second scan.
        reclaimable: ByteSize,
    },
}

/// The exact [`EvictionKey`] of `object` at `now`, computed from the
/// object itself. Indexed plans derive the same keys from the engine's
/// dense columns instead of dereferencing objects; this direct form is the
/// oracle the key-parity test checks them against.
#[cfg(test)]
fn eviction_key(object: &StoredObject, now: SimTime) -> EvictionKey {
    let (never_expires, remaining) = match object.remaining_lifetime(now) {
        Some(left) => (false, left.as_minutes()),
        None => (true, 0),
    };
    EvictionKey {
        importance: object.current_importance(now),
        never_expires,
        remaining,
        arrival: object.arrival(),
        id: object.id(),
    }
}

impl StorageUnit {
    /// Creates an empty unit with the paper's preemptive policy —
    /// shorthand for [`builder`](StorageUnit::builder) with defaults.
    pub fn new(capacity: ByteSize) -> Self {
        StorageUnit::builder(capacity).build()
    }

    /// Starts building a unit of the given capacity. See
    /// [`StorageUnitBuilder`] for the knobs.
    pub fn builder(capacity: ByteSize) -> StorageUnitBuilder {
        StorageUnitBuilder {
            capacity,
            policy: EvictionPolicy::Preemptive,
            naive: false,
            recording: true,
            obs: None,
        }
    }

    /// Creates an empty unit with an explicit eviction policy.
    #[deprecated(
        since = "0.1.0",
        note = "use StorageUnit::builder(capacity).policy(policy).build()"
    )]
    pub fn with_policy(capacity: ByteSize, policy: EvictionPolicy) -> Self {
        StorageUnit::builder(capacity).policy(policy).build()
    }

    /// Creates a unit that answers every query with full scans instead of
    /// the incremental indexes.
    #[deprecated(
        since = "0.1.0",
        note = "use StorageUnit::builder(capacity).policy(policy).naive_oracle(true).build()"
    )]
    pub fn with_policy_naive(capacity: ByteSize, policy: EvictionPolicy) -> Self {
        StorageUnit::builder(capacity)
            .policy(policy)
            .naive_oracle(true)
            .build()
    }

    /// Redirects this unit's instrumentation to `obs` (e.g. to attach a
    /// trace sink to an already-populated unit).
    pub fn set_observer(&mut self, obs: Obs) {
        self.obs = obs;
        // A newly attached observer has seen no levels yet; report the
        // queue depth afresh on the next advance.
        self.last_queue_depth = None;
    }

    /// Processes every curve breakpoint at or before `now`, bringing the
    /// incremental indexes up to date.
    ///
    /// Mutating operations do this automatically; read-only queries
    /// ([`peek_admission`](StorageUnit::peek_admission),
    /// [`importance_density`](StorageUnit::importance_density)) cannot, so
    /// they fall back to a full scan whenever breakpoints are pending.
    /// Long-running simulations that sample densities or probe admissions
    /// between mutations should call `advance` first to stay on the
    /// indexed fast path. Time travels forward only: calls with a `now`
    /// earlier than the latest one seen are no-ops.
    pub fn advance(&mut self, now: SimTime) {
        if self.naive {
            return;
        }
        if self.index.len() != self.objects.len() {
            self.index
                .rebuild(&self.objects, now, self.policy == EvictionPolicy::Fifo);
        } else {
            self.index.advance(&self.objects, now, &self.obs);
        }
        let depth = self.index.events_len() as u64;
        if self.last_queue_depth != Some(depth) {
            self.obs.gauge("engine.breakpoint_queue", depth);
            self.last_queue_depth = Some(depth);
        }
    }

    /// True when the index answers queries at `now` exactly: it covers all
    /// objects, time has not moved past unprocessed breakpoints, and the
    /// unit is not in naive-oracle mode.
    fn index_fresh(&self, now: SimTime) -> bool {
        !self.naive
            && self.index.len() == self.objects.len()
            && now >= self.index.clock()
            && self.index.events_processed_through(now)
    }

    /// The unit's total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> ByteSize {
        self.used
    }

    /// Bytes currently unallocated.
    pub fn free(&self) -> ByteSize {
        self.capacity - self.used
    }

    /// The unit's eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the unit holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &UnitStats {
        &self.stats
    }

    /// Looks up a stored object.
    pub fn get(&self, id: ObjectId) -> Option<&StoredObject> {
        self.objects.get(id)
    }

    /// True if an object with this id is stored.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.objects.contains(id)
    }

    /// Iterates over stored objects in id order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredObject> {
        self.objects.iter()
    }

    /// Enables or disables eviction/rejection record keeping.
    ///
    /// Recording is on by default; large multi-node simulations that only
    /// need aggregate [`stats`](StorageUnit::stats) can turn it off.
    pub fn set_recording(&mut self, recording: bool) {
        self.recording = recording;
    }

    /// Drains the accumulated eviction records.
    pub fn take_evictions(&mut self) -> Vec<EvictionRecord> {
        std::mem::take(&mut self.evictions)
    }

    /// Drains the accumulated rejection records.
    pub fn take_rejections(&mut self) -> Vec<RejectionRecord> {
        std::mem::take(&mut self.rejections)
    }

    /// Attempts to store `spec` at simulated time `now`, preempting less
    /// important objects if necessary.
    ///
    /// # Errors
    ///
    /// * [`StoreError::EmptyObject`] — zero-sized object.
    /// * [`StoreError::TooLarge`] — larger than total capacity.
    /// * [`StoreError::DuplicateId`] — id already present.
    /// * [`StoreError::Full`] — the unit is full *for this object's
    ///   importance level*: preempting every strictly-less-important object
    ///   still leaves too little room. Under [`EvictionPolicy::Fifo`] this
    ///   is never returned for objects that fit in the unit at all.
    pub fn store(&mut self, spec: ObjectSpec, now: SimTime) -> Result<StoreOutcome, StoreError> {
        self.stats.stores_attempted += 1;
        self.obs.counter("engine.stores", 1);
        if spec.size().is_zero() {
            return Err(StoreError::EmptyObject(spec.id()));
        }
        if spec.size() > self.capacity {
            self.stats.rejections_too_large += 1;
            return Err(StoreError::TooLarge {
                size: spec.size(),
                capacity: self.capacity,
            });
        }
        if self.objects.contains(spec.id()) {
            return Err(StoreError::DuplicateId(spec.id()));
        }
        self.advance(now);

        let incoming = spec.curve().initial_importance();
        let mut scratch = std::mem::take(&mut self.scratch);
        let plan = match self.plan(spec.size(), incoming, now, &mut scratch) {
            PlanResult::Admit(plan) => plan,
            PlanResult::Full {
                blocking,
                reclaimable,
            } => {
                self.scratch = scratch;
                self.stats.rejections_full += 1;
                self.obs.counter("engine.rejections_full", 1);
                self.obs.event(
                    now,
                    "engine.reject",
                    &[
                        ("id", spec.id().raw()),
                        ("size", spec.size().as_bytes()),
                        ("reclaimable", (self.free() + reclaimable).as_bytes()),
                    ],
                );
                if self.recording {
                    self.rejections.push(RejectionRecord {
                        id: spec.id(),
                        class: spec.class(),
                        size: spec.size(),
                        at: now,
                        incoming_importance: incoming,
                        blocking,
                    });
                }
                return Err(StoreError::Full {
                    required: spec.size(),
                    reclaimable: self.free() + reclaimable,
                    blocking,
                });
            }
        };

        self.obs.counter("engine.plans", 1);
        self.obs
            .record("engine.plan_victims", scratch.victims.len() as u64);
        self.obs.event(
            now,
            "engine.store",
            &[
                ("id", spec.id().raw()),
                ("size", spec.size().as_bytes()),
                ("victims", scratch.victims.len() as u64),
                ("freed", plan.freed.as_bytes()),
            ],
        );
        let mut evicted = Vec::with_capacity(scratch.victims.len());
        for victim in scratch.victims.drain(..) {
            let record = self.evict(victim, now, EvictionReason::Preempted);
            evicted.push(record);
        }
        self.scratch = scratch;
        debug_assert!(self.free() >= spec.size());

        let id = spec.id();
        self.used += spec.size();
        self.stats.stores_accepted += 1;
        self.stats.bytes_accepted += spec.size().as_bytes();
        let idx = self.objects.insert(StoredObject::from_spec(spec, now));
        if !self.naive {
            self.index.insert(idx.slot(), self.objects.at(idx.slot()));
        }

        Ok(StoreOutcome {
            id,
            evicted,
            highest_preempted: plan.highest,
        })
    }

    /// Previews the admission decision for an object of the given size and
    /// incoming importance, without mutating the unit.
    ///
    /// This is the probe the §5.3 distributed placement algorithm sends to
    /// candidate units: it reports the *highest importance object that will
    /// be preempted* as the placement score.
    pub fn peek_admission(&self, size: ByteSize, incoming: Importance, now: SimTime) -> Admission {
        self.obs.counter("engine.peeks", 1);
        if size.is_zero() || size > self.capacity {
            return Admission::TooLarge;
        }
        let mut scratch = PlanScratch::default();
        match self.plan(size, incoming, now, &mut scratch) {
            PlanResult::Admit(plan) => match plan.highest {
                Some(h) if !h.is_zero() => Admission::Preempting {
                    highest: h,
                    victims: scratch.victims.len(),
                    freed: plan.freed,
                },
                _ => Admission::Fits {
                    victims: scratch.victims.len(),
                },
            },
            PlanResult::Full { blocking, .. } => Admission::Full { blocking },
        }
    }

    /// Explicitly removes an object (e.g. user deletion), returning its
    /// eviction record.
    pub fn remove(&mut self, id: ObjectId, now: SimTime) -> Option<EvictionRecord> {
        if !self.objects.contains(id) {
            return None;
        }
        self.advance(now);
        self.stats.removals += 1;
        Some(self.evict(id, now, EvictionReason::Removed))
    }

    /// Reclaims every expired object, returning their records.
    ///
    /// The engine does not require this — expired bytes are preemptible by
    /// any incoming object — but an explicit sweep keeps
    /// [`used`](StorageUnit::used) meaningful for dashboards and mirrors
    /// the delete-optimized grouping of Douglis et al. that §2 discusses.
    pub fn sweep_expired(&mut self, now: SimTime) -> Vec<EvictionRecord> {
        let _span = self.obs.span("span.engine.sweep");
        self.advance(now);
        let mut scratch = std::mem::take(&mut self.scratch);
        if self.index_fresh(now) {
            self.index.expired_ids(now, &mut scratch.sweep_ids);
        } else {
            scratch.sweep_ids.clear();
            scratch.sweep_ids.extend(
                self.objects
                    .iter()
                    .filter(|o| o.is_expired(now))
                    .map(|o| o.id()),
            );
        }
        self.obs.counter("engine.sweeps", 1);
        self.obs
            .record("engine.sweep_reclaimed", scratch.sweep_ids.len() as u64);
        let records = scratch
            .sweep_ids
            .drain(..)
            .map(|id| self.evict(id, now, EvictionReason::Expired))
            .collect();
        self.scratch = scratch;
        records
    }

    /// Replaces a stored object's annotation with a fresh curve — the
    /// "active intervention by the user" §3 requires for raising
    /// importance. The new curve's age restarts at `now`.
    ///
    /// # Errors
    ///
    /// * [`RejuvenateError::NotFound`] — no such object.
    /// * [`RejuvenateError::WouldLowerImportance`] — the replacement curve
    ///   starts below the object's current importance.
    pub fn rejuvenate(
        &mut self,
        id: ObjectId,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<(), RejuvenateError> {
        self.advance(now);
        let (slot, object) = self
            .objects
            .get_mut(id)
            .ok_or(RejuvenateError::NotFound(id))?;
        let current = object.current_importance(now);
        let proposed = curve.initial_importance();
        if proposed < current {
            return Err(RejuvenateError::WouldLowerImportance { current, proposed });
        }
        object.rejuvenate(curve, now);
        if !self.naive {
            self.index.reannotate(slot, self.objects.at(slot));
        }
        Ok(())
    }

    /// Lowers a stored object's annotation without the raise-only check —
    /// the §6 "trigger" scenario (e.g. a backup completed, so the local
    /// copy's importance can drop). The new curve's age restarts at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`RejuvenateError::NotFound`] if no such object is stored.
    pub fn reannotate(
        &mut self,
        id: ObjectId,
        curve: ImportanceCurve,
        now: SimTime,
    ) -> Result<(), RejuvenateError> {
        self.advance(now);
        let (slot, object) = self
            .objects
            .get_mut(id)
            .ok_or(RejuvenateError::NotFound(id))?;
        object.rejuvenate(curve, now);
        if !self.naive {
            self.index.reannotate(slot, self.objects.at(slot));
        }
        Ok(())
    }

    fn evict(&mut self, id: ObjectId, now: SimTime, reason: EvictionReason) -> EvictionRecord {
        let (slot, object) = self
            .objects
            .remove_entry(id)
            .expect("evict called with resident id");
        if !self.naive {
            self.index.remove(slot, id);
        }
        self.used -= object.size();
        match reason {
            EvictionReason::Preempted => {
                self.stats.evictions_preempted += 1;
                self.obs.counter("engine.evictions_preempted", 1);
            }
            EvictionReason::Expired => {
                self.stats.evictions_expired += 1;
                self.obs.counter("engine.evictions_expired", 1);
            }
            EvictionReason::Removed => self.obs.counter("engine.removals", 1),
        }
        self.stats.bytes_evicted += object.size().as_bytes();
        let record = EvictionRecord {
            id: object.id(),
            class: object.class(),
            size: object.size(),
            arrival: object.arrival(),
            evicted_at: now,
            importance_at_eviction: object.current_importance(now),
            requested_expiry: object.curve().expiry(),
            reason,
        };
        self.obs.event(
            now,
            "engine.evict",
            &[
                ("id", record.id.raw()),
                ("size", record.size.as_bytes()),
                // 0 = preempted, 1 = expired, 2 = removed.
                ("reason", reason as u64),
                // Importance is a unit-interval float; ppm keeps the trace
                // integer-only without losing plot-resolution precision.
                (
                    "importance_ppm",
                    (record.importance_at_eviction.value() * 1e6).round() as u64,
                ),
            ],
        );
        if self.recording {
            self.evictions.push(record.clone());
        }
        record
    }

    /// Computes the set of victims needed to fit `size` bytes for an
    /// object entering with importance `incoming`. Victim ids accumulate
    /// into `scratch.victims` (cleared first).
    fn plan(
        &self,
        size: ByteSize,
        incoming: Importance,
        now: SimTime,
        scratch: &mut PlanScratch,
    ) -> PlanResult {
        scratch.victims.clear();
        if self.free() >= size {
            return PlanResult::Admit(Plan {
                freed: ByteSize::ZERO,
                highest: None,
            });
        }
        if self.index_fresh(now) {
            match self.policy {
                EvictionPolicy::Preemptive => self.plan_indexed(size, incoming, now, scratch),
                EvictionPolicy::Fifo => self.plan_indexed_fifo(size, incoming, now, scratch),
            }
        } else {
            self.plan_naive(size, incoming, now, scratch)
        }
    }

    /// Preemption planning over the incremental indexes: a k-way merge of
    /// the expired set, the settled set and the shape-group cursors, each
    /// already in eviction order, stopping as soon as enough bytes are
    /// freed. Visits `O(victims + streams)` objects instead of all of
    /// them.
    fn plan_indexed(
        &self,
        size: ByteSize,
        incoming: Importance,
        now: SimTime,
        scratch: &mut PlanScratch,
    ) -> PlanResult {
        scratch.heads.clear();
        for sid in 0..self.index.stream_count() {
            if let Some((key, expired, slot, resume)) = self.index.stream_head(sid, now) {
                scratch.heads.push((key, expired, sid, resume, slot));
            }
        }

        // While a step curve sits on its expiry minute, an expired (hence
        // preemptible) object with *positive* importance can follow a
        // non-preemptible head in key order, so the merge must keep
        // scanning past blockers for that one minute.
        let scan_past_blockers = self.index.finalize_pending(now);

        let free = self.free();
        let mut freed = ByteSize::ZERO;
        let mut highest: Option<Importance> = None;
        let mut blocking: Option<Importance> = None;
        while free + freed < size {
            let Some(best) = scratch
                .heads
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.0.cmp(&b.0))
                .map(|(i, _)| i)
            else {
                // Every candidate consumed and still not enough room.
                return PlanResult::Full {
                    blocking,
                    reclaimable: freed,
                };
            };
            let (key, expired, sid, resume, slot) = scratch.heads[best];
            match self.index.stream_next_head(sid, resume, now) {
                Some((next_key, next_expired, next_slot, next_resume)) => {
                    scratch.heads[best] = (next_key, next_expired, sid, next_resume, next_slot);
                }
                None => {
                    scratch.heads.swap_remove(best);
                }
            }
            if key.importance < incoming || expired {
                scratch.victims.push(key.id);
                freed += self.objects.at(slot).size();
                highest = Some(match highest {
                    Some(h) => h.max(key.importance),
                    None => key.importance,
                });
            } else {
                // First blocker carries the minimum non-preemptible
                // importance; everything still enqueued sorts after it.
                if blocking.is_none() {
                    blocking = Some(key.importance);
                }
                if !scan_past_blockers {
                    return PlanResult::Full {
                        blocking,
                        reclaimable: freed,
                    };
                }
            }
        }
        PlanResult::Admit(Plan { freed, highest })
    }

    /// FIFO planning over the always-maintained `(arrival, id)` index.
    fn plan_indexed_fifo(
        &self,
        size: ByteSize,
        incoming: Importance,
        now: SimTime,
        scratch: &mut PlanScratch,
    ) -> PlanResult {
        let free = self.free();
        let mut freed = ByteSize::ZERO;
        let mut highest: Option<Importance> = None;
        for slot in self.index.fifo_order() {
            if free + freed >= size {
                break;
            }
            let object = self.objects.at(slot);
            scratch.victims.push(object.id());
            freed += object.size();
            let imp = object.current_importance(now);
            highest = Some(match highest {
                Some(h) => h.max(imp),
                None => imp,
            });
        }
        if free + freed >= size {
            PlanResult::Admit(Plan { freed, highest })
        } else {
            // Unreachable through the public API (anything at most the
            // capacity always fits under FIFO), but kept equivalent to the
            // scan engine for completeness.
            let blocking = self
                .objects
                .iter()
                .filter(|o| !(o.current_importance(now) < incoming || o.is_expired(now)))
                .map(|o| o.current_importance(now))
                .min();
            PlanResult::Full {
                blocking,
                reclaimable: freed,
            }
        }
    }

    /// The full-scan reference implementation of planning.
    fn plan_naive(
        &self,
        size: ByteSize,
        incoming: Importance,
        now: SimTime,
        scratch: &mut PlanScratch,
    ) -> PlanResult {
        // Candidate victims in eviction order.
        let mut candidates: Vec<(&StoredObject, Importance)> = self
            .objects
            .iter()
            .filter_map(|o| {
                let imp = o.current_importance(now);
                let preemptible = match self.policy {
                    // Strict rule (§3): strictly lower importance only.
                    // Expired objects carry importance zero, so they are
                    // preemptible by anything positive; a zero-importance
                    // incoming object may still replace *expired* data
                    // ("objects of importance zero may be freely replaced
                    // by any other object").
                    EvictionPolicy::Preemptive => imp < incoming || o.is_expired(now),
                    // Palimpsest: everything is fair game.
                    EvictionPolicy::Fifo => true,
                };
                preemptible.then_some((o, imp))
            })
            .collect();

        match self.policy {
            EvictionPolicy::Preemptive => {
                // §5.3: "increasing current temporal importance value
                // followed by the amount of the remaining lifetimes";
                // arrival then id break remaining ties deterministically.
                candidates.sort_by(|(a, ia), (b, ib)| {
                    ia.cmp(ib)
                        .then_with(|| {
                            let ra = a.remaining_lifetime(now).map(|d| d.as_minutes());
                            let rb = b.remaining_lifetime(now).map(|d| d.as_minutes());
                            // None (never expires) sorts last.
                            match (ra, rb) {
                                (Some(x), Some(y)) => x.cmp(&y),
                                (Some(_), None) => std::cmp::Ordering::Less,
                                (None, Some(_)) => std::cmp::Ordering::Greater,
                                (None, None) => std::cmp::Ordering::Equal,
                            }
                        })
                        .then_with(|| a.arrival().cmp(&b.arrival()))
                        .then_with(|| a.id().cmp(&b.id()))
                });
            }
            EvictionPolicy::Fifo => {
                candidates.sort_by(|(a, _), (b, _)| {
                    a.arrival()
                        .cmp(&b.arrival())
                        .then_with(|| a.id().cmp(&b.id()))
                });
            }
        }

        let mut freed = ByteSize::ZERO;
        let mut highest: Option<Importance> = None;
        for (object, imp) in &candidates {
            if self.free() + freed >= size {
                break;
            }
            scratch.victims.push(object.id());
            freed += object.size();
            highest = Some(match highest {
                Some(h) => h.max(*imp),
                None => *imp,
            });
        }

        if self.free() + freed >= size {
            PlanResult::Admit(Plan { freed, highest })
        } else {
            // Not enough even after preempting everything eligible: the
            // unit is full for this importance level. Report the lowest
            // importance among the objects that block admission, and the
            // total candidate bytes as the reclaimable estimate.
            let blocking = self
                .objects
                .iter()
                .filter(|o| !(o.current_importance(now) < incoming || o.is_expired(now)))
                .map(|o| o.current_importance(now))
                .min();
            let reclaimable = candidates.iter().map(|(o, _)| o.size()).sum();
            PlanResult::Full {
                blocking,
                reclaimable,
            }
        }
    }

    /// The unit's instrumentation handle, shared with the sibling modules
    /// (density sampling) that extend `StorageUnit`.
    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Fast-path weighted importance sum when the index is current for
    /// `now`; `None` sends the caller to the full scan.
    pub(crate) fn weighted_importance_fast(&self, now: SimTime) -> Option<f64> {
        if self.index_fresh(now) {
            Some(self.index.weighted_importance(now))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimDuration;

    fn mib(n: u64) -> ByteSize {
        ByteSize::from_mib(n)
    }

    fn days(n: u64) -> SimDuration {
        SimDuration::from_days(n)
    }

    fn imp(v: f64) -> Importance {
        Importance::new(v).unwrap()
    }

    fn fixed_spec(id: u64, size: ByteSize, importance: f64, expiry_days: u64) -> ObjectSpec {
        ObjectSpec::new(
            ObjectId::new(id),
            size,
            ImportanceCurve::Fixed {
                importance: imp(importance),
                expiry: days(expiry_days),
            },
        )
    }

    /// Every stream-head key the index derives from its dense columns must
    /// equal the key computed directly from the stored object — across
    /// expired, settled and shape-group homes, including rejuvenated
    /// annotations (`annotated_at != arrival`).
    #[test]
    fn index_derived_keys_match_the_object_oracle() {
        let now = SimTime::ZERO + days(20);
        let mut unit = StorageUnit::new(mib(1000));
        let two_step = |id: u64| {
            ObjectSpec::new(
                ObjectId::new(id),
                mib(1),
                ImportanceCurve::two_step(imp(0.8), days(15), days(15)),
            )
        };
        unit.store(fixed_spec(1, mib(1), 0.9, 10), SimTime::ZERO)
            .unwrap(); // expired by day 20
        unit.store(fixed_spec(2, mib(1), 0.9, 3650), SimTime::ZERO)
            .unwrap(); // mid-plateau group member
        unit.store(two_step(3), SimTime::ZERO).unwrap(); // mid-wane
        unit.store(two_step(4), SimTime::ZERO + days(2)).unwrap();
        unit.store(
            ObjectSpec::new(ObjectId::new(5), mib(1), ImportanceCurve::Persistent),
            SimTime::ZERO,
        )
        .unwrap(); // settled
        unit.store(
            ObjectSpec::new(ObjectId::new(6), mib(1), ImportanceCurve::Ephemeral),
            SimTime::ZERO,
        )
        .unwrap(); // expired immediately
        unit.rejuvenate(
            ObjectId::new(4),
            ImportanceCurve::two_step(imp(0.8), days(15), days(15)),
            SimTime::ZERO + days(10),
        )
        .unwrap(); // annotated_at != arrival
        unit.advance(now);

        let mut seen = 0;
        for sid in 0..unit.index.stream_count() {
            let mut cursor = unit.index.stream_head(sid, now);
            while let Some((key, expired, slot, resume)) = cursor {
                let object = unit.objects.at(slot);
                assert_eq!(key, eviction_key(object, now), "stream {sid}");
                assert_eq!(expired, object.is_expired(now), "stream {sid}");
                seen += 1;
                cursor = unit.index.stream_next_head(sid, resume, now);
            }
        }
        assert_eq!(seen, unit.len(), "every resident visited exactly once");
    }

    #[test]
    fn stores_into_free_space_without_eviction() {
        let mut unit = StorageUnit::new(mib(100));
        let out = unit
            .store(fixed_spec(1, mib(40), 1.0, 30), SimTime::ZERO)
            .unwrap();
        assert!(out.evicted.is_empty());
        assert_eq!(out.highest_preempted, None);
        assert_eq!(unit.used(), mib(40));
        assert_eq!(unit.free(), mib(60));
        assert_eq!(unit.len(), 1);
        assert!(unit.contains(ObjectId::new(1)));
    }

    #[test]
    fn rejects_zero_sized_and_oversized_and_duplicate() {
        let mut unit = StorageUnit::new(mib(100));
        assert!(matches!(
            unit.store(fixed_spec(1, ByteSize::ZERO, 1.0, 1), SimTime::ZERO),
            Err(StoreError::EmptyObject(_))
        ));
        assert!(matches!(
            unit.store(fixed_spec(1, mib(200), 1.0, 1), SimTime::ZERO),
            Err(StoreError::TooLarge { .. })
        ));
        unit.store(fixed_spec(1, mib(10), 1.0, 1), SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            unit.store(fixed_spec(1, mib(10), 1.0, 1), SimTime::ZERO),
            Err(StoreError::DuplicateId(_))
        ));
        assert_eq!(unit.stats().rejections_too_large, 1);
    }

    #[test]
    fn preempts_strictly_lower_importance_only() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(60), 0.5, 365), SimTime::ZERO)
            .unwrap();
        unit.store(fixed_spec(2, mib(40), 0.9, 365), SimTime::ZERO)
            .unwrap();

        // Equal importance (0.5) cannot preempt the 0.5 object.
        let err = unit
            .store(fixed_spec(3, mib(50), 0.5, 365), SimTime::ZERO)
            .unwrap_err();
        match err {
            StoreError::Full { blocking, .. } => {
                assert_eq!(blocking, Some(imp(0.5)));
            }
            other => panic!("expected Full, got {other:?}"),
        }

        // Higher importance (0.7) preempts the 0.5 object but not the 0.9.
        let out = unit
            .store(fixed_spec(4, mib(50), 0.7, 365), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(out.evicted[0].id, ObjectId::new(1));
        assert_eq!(out.highest_preempted, Some(imp(0.5)));
        assert!(unit.contains(ObjectId::new(2)));
        assert!(unit.contains(ObjectId::new(4)));
    }

    #[test]
    fn full_importance_objects_are_never_preempted() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(100), 1.0, 365), SimTime::ZERO)
            .unwrap();
        let err = unit
            .store(fixed_spec(2, mib(1), 1.0, 365), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, StoreError::Full { .. }));
        assert_eq!(unit.stats().rejections_full, 1);
    }

    #[test]
    fn expired_objects_are_preemptible_by_anything() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(100), 1.0, 10), SimTime::ZERO)
            .unwrap();
        // After expiry, even an ephemeral (importance-0) object can displace it.
        let later = SimTime::from_days(11);
        let spec = ObjectSpec::new(ObjectId::new(2), mib(50), ImportanceCurve::Ephemeral);
        let out = unit.store(spec, later).unwrap();
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(out.evicted[0].importance_at_eviction, Importance::ZERO);
        assert_eq!(out.highest_preempted, Some(Importance::ZERO));
        // The outcome still scores zero for placement.
        assert_eq!(out.placement_score(), Importance::ZERO);
    }

    #[test]
    fn victims_are_taken_in_increasing_importance_order() {
        let mut unit = StorageUnit::new(mib(90));
        unit.store(fixed_spec(1, mib(30), 0.2, 365), SimTime::ZERO)
            .unwrap();
        unit.store(fixed_spec(2, mib(30), 0.6, 365), SimTime::ZERO)
            .unwrap();
        unit.store(fixed_spec(3, mib(30), 0.4, 365), SimTime::ZERO)
            .unwrap();

        // Needs 60 MiB: should take 0.2 then 0.4, leaving 0.6 resident.
        let out = unit
            .store(fixed_spec(4, mib(60), 0.9, 365), SimTime::ZERO)
            .unwrap();
        let evicted: Vec<u64> = out.evicted.iter().map(|r| r.id.raw()).collect();
        assert_eq!(evicted, vec![1, 3]);
        assert_eq!(out.highest_preempted, Some(imp(0.4)));
        assert!(unit.contains(ObjectId::new(2)));
    }

    #[test]
    fn equal_importance_ties_break_by_remaining_lifetime() {
        let mut unit = StorageUnit::new(mib(60));
        // Same importance, different expiries.
        unit.store(fixed_spec(1, mib(30), 0.5, 100), SimTime::ZERO)
            .unwrap();
        unit.store(fixed_spec(2, mib(30), 0.5, 10), SimTime::ZERO)
            .unwrap();
        let out = unit
            .store(fixed_spec(3, mib(30), 0.8, 365), SimTime::ZERO)
            .unwrap();
        // Object 2 expires sooner, so it goes first.
        assert_eq!(out.evicted[0].id, ObjectId::new(2));
        assert!(unit.contains(ObjectId::new(1)));
    }

    #[test]
    fn never_expiring_objects_sort_after_expiring_peers() {
        let mut unit = StorageUnit::new(mib(60));
        let persistent_low = ObjectSpec::new(
            ObjectId::new(1),
            mib(30),
            ImportanceCurve::Fixed {
                importance: imp(0.5),
                expiry: days(100_000),
            },
        );
        unit.store(persistent_low, SimTime::ZERO).unwrap();
        // A piecewise curve with positive tail never expires.
        let tail = crate::PiecewiseCurve::new(vec![(SimDuration::ZERO, imp(0.5))]).unwrap();
        unit.store(
            ObjectSpec::new(ObjectId::new(2), mib(30), tail.into()),
            SimTime::ZERO,
        )
        .unwrap();
        let out = unit
            .store(fixed_spec(3, mib(30), 0.9, 365), SimTime::ZERO)
            .unwrap();
        // Finite expiry (id 1) evicts before the never-expiring id 2.
        assert_eq!(out.evicted[0].id, ObjectId::new(1));
    }

    #[test]
    fn fifo_policy_never_rejects_and_evicts_oldest() {
        let mut unit = StorageUnit::builder(mib(100))
            .policy(EvictionPolicy::Fifo)
            .build();
        for (i, t) in [(1u64, 0u64), (2, 5), (3, 10)] {
            unit.store(fixed_spec(i, mib(30), 1.0, 365), SimTime::from_days(t))
                .unwrap();
        }
        // Even a zero-importance object displaces the oldest full-importance
        // one: 10 MiB free + 30 MiB from the oldest victim covers 40 MiB.
        let spec = ObjectSpec::new(ObjectId::new(4), mib(40), ImportanceCurve::Ephemeral);
        let out = unit.store(spec, SimTime::from_days(20)).unwrap();
        let evicted: Vec<u64> = out.evicted.iter().map(|r| r.id.raw()).collect();
        assert_eq!(evicted, vec![1]);
        assert_eq!(unit.stats().rejections_full, 0);

        // A second large arrival keeps consuming in FIFO order.
        let spec = ObjectSpec::new(ObjectId::new(5), mib(60), ImportanceCurve::Ephemeral);
        let out = unit.store(spec, SimTime::from_days(21)).unwrap();
        let evicted: Vec<u64> = out.evicted.iter().map(|r| r.id.raw()).collect();
        assert_eq!(evicted, vec![2, 3]);
    }

    #[test]
    fn eviction_records_capture_lifetime_achieved() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(100), 0.5, 30), SimTime::ZERO)
            .unwrap();
        let at = SimTime::from_days(12);
        let out = unit.store(fixed_spec(2, mib(50), 0.9, 30), at).unwrap();
        let rec = &out.evicted[0];
        assert_eq!(rec.lifetime_achieved(), days(12));
        assert_eq!(rec.importance_at_eviction, imp(0.5));
        assert_eq!(rec.requested_expiry, Some(days(30)));
        assert_eq!(rec.reason, EvictionReason::Preempted);
        // The unit also logged it.
        let log = unit.take_evictions();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0], *rec);
        assert!(unit.take_evictions().is_empty());
    }

    #[test]
    fn rejection_records_capture_blocking_importance() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(80), 0.6, 365), SimTime::ZERO)
            .unwrap();
        unit.store(fixed_spec(2, mib(20), 0.3, 365), SimTime::ZERO)
            .unwrap();
        let _ = unit.store(fixed_spec(3, mib(50), 0.4, 365), SimTime::ZERO);
        let rejections = unit.take_rejections();
        assert_eq!(rejections.len(), 1);
        assert_eq!(rejections[0].incoming_importance, imp(0.4));
        assert_eq!(rejections[0].blocking, Some(imp(0.6)));
    }

    #[test]
    fn peek_admission_matches_store_and_does_not_mutate() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(60), 0.3, 365), SimTime::ZERO)
            .unwrap();
        unit.store(fixed_spec(2, mib(40), 0.8, 365), SimTime::ZERO)
            .unwrap();

        let before = unit.used();
        let peek = unit.peek_admission(mib(50), imp(0.5), SimTime::ZERO);
        assert_eq!(unit.used(), before);
        match peek {
            Admission::Preempting {
                highest,
                victims,
                freed,
            } => {
                assert_eq!(highest, imp(0.3));
                assert_eq!(victims, 1);
                assert_eq!(freed, mib(60));
            }
            other => panic!("expected Preempting, got {other:?}"),
        }

        let full = unit.peek_admission(mib(50), imp(0.2), SimTime::ZERO);
        assert!(matches!(full, Admission::Full { .. }));
        assert!(matches!(
            unit.peek_admission(mib(500), imp(1.0), SimTime::ZERO),
            Admission::TooLarge
        ));
        // With zero free space, a 0.1-importance object cannot displace the
        // resident 0.3 object — the unit is full even for 1 MiB.
        assert!(matches!(
            unit.peek_admission(mib(1), imp(0.1), SimTime::ZERO),
            Admission::Full { .. }
        ));
        // An empty unit admits into free space.
        let empty = StorageUnit::new(mib(100));
        assert!(matches!(
            empty.peek_admission(mib(1), imp(0.1), SimTime::ZERO),
            Admission::Fits { victims: 0 }
        ));

        // Store agrees with peek.
        let out = unit
            .store(fixed_spec(3, mib(50), 0.5, 365), SimTime::ZERO)
            .unwrap();
        assert_eq!(out.highest_preempted, Some(imp(0.3)));
    }

    #[test]
    fn sweep_expired_reclaims_only_expired() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(30), 1.0, 10), SimTime::ZERO)
            .unwrap();
        unit.store(fixed_spec(2, mib(30), 1.0, 100), SimTime::ZERO)
            .unwrap();
        let swept = unit.sweep_expired(SimTime::from_days(50));
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].id, ObjectId::new(1));
        assert_eq!(swept[0].reason, EvictionReason::Expired);
        assert_eq!(unit.len(), 1);
        assert_eq!(unit.used(), mib(30));
        assert_eq!(unit.stats().evictions_expired, 1);
    }

    #[test]
    fn remove_returns_record() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(30), 1.0, 10), SimTime::ZERO)
            .unwrap();
        let rec = unit
            .remove(ObjectId::new(1), SimTime::from_days(3))
            .unwrap();
        assert_eq!(rec.reason, EvictionReason::Removed);
        assert_eq!(rec.lifetime_achieved(), days(3));
        assert!(unit
            .remove(ObjectId::new(1), SimTime::from_days(3))
            .is_none());
        assert_eq!(unit.stats().removals, 1);
        assert!(unit.is_empty());
    }

    #[test]
    fn rejuvenate_raises_importance_and_rejects_lowering() {
        let mut unit = StorageUnit::new(mib(100));
        let spec = ObjectSpec::new(
            ObjectId::new(1),
            mib(10),
            ImportanceCurve::two_step(Importance::FULL, days(10), days(10)),
        );
        unit.store(spec, SimTime::ZERO).unwrap();
        let mid_wane = SimTime::from_days(15); // importance 0.5

        // Lowering is refused...
        let err = unit
            .rejuvenate(ObjectId::new(1), ImportanceCurve::Ephemeral, mid_wane)
            .unwrap_err();
        assert!(matches!(err, RejuvenateError::WouldLowerImportance { .. }));

        // ...raising succeeds and restarts the curve.
        unit.rejuvenate(
            ObjectId::new(1),
            ImportanceCurve::fixed_lifetime(days(30)),
            mid_wane,
        )
        .unwrap();
        let obj = unit.get(ObjectId::new(1)).unwrap();
        assert_eq!(obj.current_importance(mid_wane), Importance::FULL);
        assert!(!obj.is_expired(SimTime::from_days(40)));
        assert!(obj.is_expired(SimTime::from_days(45)));

        // Unknown id.
        assert!(matches!(
            unit.rejuvenate(ObjectId::new(9), ImportanceCurve::Persistent, mid_wane),
            Err(RejuvenateError::NotFound(_))
        ));
    }

    #[test]
    fn reannotate_allows_demotion() {
        let mut unit = StorageUnit::new(mib(100));
        unit.store(fixed_spec(1, mib(10), 1.0, 365), SimTime::ZERO)
            .unwrap();
        unit.reannotate(ObjectId::new(1), ImportanceCurve::Ephemeral, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            unit.get(ObjectId::new(1))
                .unwrap()
                .current_importance(SimTime::ZERO),
            Importance::ZERO
        );
    }

    #[test]
    fn recording_can_be_disabled() {
        let mut unit = StorageUnit::new(mib(10));
        unit.set_recording(false);
        unit.store(fixed_spec(1, mib(10), 0.5, 10), SimTime::ZERO)
            .unwrap();
        let _ = unit.store(fixed_spec(2, mib(10), 0.9, 10), SimTime::ZERO);
        let _ = unit.store(fixed_spec(3, mib(10), 0.1, 10), SimTime::ZERO);
        assert!(unit.take_evictions().is_empty());
        assert!(unit.take_rejections().is_empty());
        // Stats still counted.
        assert_eq!(unit.stats().evictions_preempted, 1);
        assert_eq!(unit.stats().rejections_full, 1);
    }

    #[test]
    fn used_plus_free_equals_capacity_through_churn() {
        let mut unit = StorageUnit::new(mib(100));
        let mut t = SimTime::ZERO;
        for i in 0..200u64 {
            let _ = unit.store(
                fixed_spec(i, mib(1 + i % 37), (i % 10) as f64 / 10.0, 20),
                t,
            );
            t += days(1);
            assert_eq!(unit.used() + unit.free(), unit.capacity());
            let resident: ByteSize = unit.iter().map(|o| o.size()).sum();
            assert_eq!(resident, unit.used());
        }
    }
}
