//! Error types for the temporal-importance core library.

use std::error::Error;
use std::fmt;

use sim_core::ByteSize;

use crate::{Importance, ObjectId};

/// An importance value outside the valid `[0, 1]` range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceError {
    /// The offending value.
    pub(crate) value: f64,
}

impl ImportanceError {
    /// The value that failed validation.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for ImportanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "importance must be a finite value in [0, 1], got {}",
            self.value
        )
    }
}

impl Error for ImportanceError {}

/// An invalid importance-curve specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CurveError {
    /// A piecewise curve had no points.
    Empty,
    /// A piecewise curve's first point was not at age zero.
    MissingOrigin,
    /// Point ages were not strictly increasing.
    NonIncreasingAges {
        /// Index of the offending point.
        index: usize,
    },
    /// Importance values increased with age, violating the paper's
    /// requirement that curves be monotonically non-increasing (§3).
    IncreasingImportance {
        /// Index of the offending point.
        index: usize,
    },
    /// An exponential decay curve had a zero-length half life.
    ZeroHalfLife,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Empty => write!(f, "piecewise curve needs at least one point"),
            CurveError::MissingOrigin => {
                write!(f, "piecewise curve must start at age zero")
            }
            CurveError::NonIncreasingAges { index } => {
                write!(
                    f,
                    "piecewise curve ages must strictly increase (point {index})"
                )
            }
            CurveError::IncreasingImportance { index } => write!(
                f,
                "importance curves must be monotonically non-increasing (point {index})"
            ),
            CurveError::ZeroHalfLife => write!(f, "exponential decay half-life must be positive"),
        }
    }
}

impl Error for CurveError {}

/// A store request that the unit could not satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The storage is *full* for this object: even after preempting every
    /// strictly-less-important object there is not enough room.
    ///
    /// `blocking` is the lowest current importance among objects that could
    /// not be preempted — the signal the paper feeds back to content
    /// creators ("objects with importance less than 0.25 cannot be stored",
    /// §5.1.2).
    Full {
        /// Bytes the object needs.
        required: ByteSize,
        /// Bytes reclaimable for it (free space + preemptible bytes).
        reclaimable: ByteSize,
        /// Lowest importance among non-preemptible objects, if any.
        blocking: Option<Importance>,
    },
    /// The object is larger than the unit's total capacity.
    TooLarge {
        /// Bytes the object needs.
        size: ByteSize,
        /// The unit's capacity.
        capacity: ByteSize,
    },
    /// An object with this id is already stored.
    DuplicateId(ObjectId),
    /// The object declared a zero size, which the store rejects to keep
    /// accounting meaningful.
    EmptyObject(ObjectId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Full {
                required,
                reclaimable,
                blocking,
            } => {
                write!(
                    f,
                    "storage full for this importance level: need {required}, reclaimable {reclaimable}"
                )?;
                if let Some(b) = blocking {
                    write!(f, ", blocked by importance {b}")?;
                }
                Ok(())
            }
            StoreError::TooLarge { size, capacity } => {
                write!(f, "object of {size} exceeds unit capacity {capacity}")
            }
            StoreError::DuplicateId(id) => write!(f, "object {id} is already stored"),
            StoreError::EmptyObject(id) => write!(f, "object {id} has zero size"),
        }
    }
}

impl Error for StoreError {}

/// A failed re-annotation (rejuvenation) request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejuvenateError {
    /// No stored object has this id.
    NotFound(ObjectId),
    /// The replacement curve would *lower* the object's current importance.
    ///
    /// Rejuvenation exists so users can raise importance via "active
    /// intervention" (§3); lowering happens naturally through decay, and a
    /// silent drop would let a caller bypass preemption accounting.
    WouldLowerImportance {
        /// Importance under the existing annotation.
        current: Importance,
        /// Importance the replacement curve would start at.
        proposed: Importance,
    },
}

impl fmt::Display for RejuvenateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejuvenateError::NotFound(id) => write!(f, "object {id} is not stored here"),
            RejuvenateError::WouldLowerImportance { current, proposed } => write!(
                f,
                "rejuvenation cannot lower importance (current {current}, proposed {proposed})"
            ),
        }
    }
}

impl Error for RejuvenateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_error<E: Error + Send + Sync + 'static>() {}

    #[test]
    fn error_types_are_well_behaved() {
        assert_error::<ImportanceError>();
        assert_error::<CurveError>();
        assert_error::<StoreError>();
        assert_error::<RejuvenateError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = StoreError::TooLarge {
            size: ByteSize::from_gib(2),
            capacity: ByteSize::from_gib(1),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("object"));
        assert!(msg.contains("2.00 GiB"));

        let e = StoreError::Full {
            required: ByteSize::from_mib(10),
            reclaimable: ByteSize::from_mib(5),
            blocking: Some(Importance::new(0.25).unwrap()),
        };
        assert!(e.to_string().contains("0.2500"));
    }
}
