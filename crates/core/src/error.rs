//! Error types for the temporal-importance core library.

use std::error::Error as StdError;
use std::fmt;

use sim_core::ByteSize;

use crate::{FairStoreError, Importance, ObjectId};

/// The consolidated error hierarchy for the whole workspace.
///
/// Each operation still returns its precise error type (`StoreError`,
/// `RejuvenateError`, …) so callers who match on variants lose nothing;
/// this umbrella exists for callers who thread heterogeneous failures
/// through one `Result` — experiment drivers, the filesystem layer, and
/// downstream users of the `tempimp` facade. Sibling crates fold their own
/// error types in through [`Error::External`] (besteffs placement,
/// workload traces, tifs), so `?` converts end to end.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimTime};
/// use temporal_importance::{Error, ImportanceCurve, ObjectId, ObjectSpec, StorageUnit};
///
/// fn fill(unit: &mut StorageUnit) -> Result<(), Error> {
///     let spec = ObjectSpec::new(
///         ObjectId::new(1),
///         ByteSize::from_mib(10),
///         ImportanceCurve::Persistent,
///     );
///     unit.store(spec, SimTime::ZERO)?; // StoreError -> Error
///     Ok(())
/// }
///
/// let mut unit = StorageUnit::new(ByteSize::from_mib(100));
/// assert!(fill(&mut unit).is_ok());
/// assert!(matches!(fill(&mut unit), Err(Error::Store(_))));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// An importance value outside `[0, 1]`.
    Importance(ImportanceError),
    /// An invalid importance-curve specification.
    Curve(CurveError),
    /// A store request the unit could not satisfy.
    Store(StoreError),
    /// A failed rejuvenation request.
    Rejuvenate(RejuvenateError),
    /// A fair-share admission failure.
    FairStore(FairStoreError),
    /// An error from a crate layered on top of this one (placement,
    /// workload parsing, filesystem), carried without this crate having to
    /// know its type.
    External(Box<dyn StdError + Send + Sync + 'static>),
    /// A serving layer routed a request to a shard that is not accepting
    /// work (failed node, worker shut down).
    ShardUnavailable {
        /// The shard the request hashed to.
        shard: u32,
    },
    /// A shard's bounded ingest queue was full — the backpressure signal
    /// of the serving layer. Retry later or slow down.
    QueueFull {
        /// The shard whose queue rejected the request.
        shard: u32,
    },
    /// The serving layer's worker threads are gone: the request channel or
    /// the response channel was closed mid-request.
    Disconnected,
}

impl Error {
    /// Wraps an error from a higher layer. Sibling crates use this in
    /// their `From` impls; applications can call it directly.
    pub fn external(error: impl StdError + Send + Sync + 'static) -> Self {
        Error::External(Box::new(error))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Importance(e) => e.fmt(f),
            Error::Curve(e) => e.fmt(f),
            Error::Store(e) => e.fmt(f),
            Error::Rejuvenate(e) => e.fmt(f),
            Error::FairStore(e) => e.fmt(f),
            Error::External(e) => e.fmt(f),
            Error::ShardUnavailable { shard } => {
                write!(f, "shard {shard} is not accepting requests")
            }
            Error::QueueFull { shard } => {
                write!(f, "shard {shard} ingest queue is full")
            }
            Error::Disconnected => write!(f, "serving layer disconnected"),
        }
    }
}

impl StdError for Error {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            Error::Importance(e) => Some(e),
            Error::Curve(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Rejuvenate(e) => Some(e),
            Error::FairStore(e) => Some(e),
            Error::External(e) => Some(e.as_ref()),
            Error::ShardUnavailable { .. } | Error::QueueFull { .. } | Error::Disconnected => None,
        }
    }
}

impl From<ImportanceError> for Error {
    fn from(e: ImportanceError) -> Self {
        Error::Importance(e)
    }
}

impl From<CurveError> for Error {
    fn from(e: CurveError) -> Self {
        Error::Curve(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<RejuvenateError> for Error {
    fn from(e: RejuvenateError) -> Self {
        Error::Rejuvenate(e)
    }
}

impl From<FairStoreError> for Error {
    fn from(e: FairStoreError) -> Self {
        Error::FairStore(e)
    }
}

/// Externally persisted unit state that cannot be reassembled into a
/// consistent [`StorageUnit`](crate::StorageUnit).
///
/// Returned by [`StorageUnitBuilder::restore`]; durable backends hit these
/// when a log replay produces contradictory state (which means the log —
/// not the unit — is corrupt).
///
/// [`StorageUnitBuilder::restore`]: crate::StorageUnitBuilder::restore
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RestoreError {
    /// Two live objects carried the same id.
    DuplicateId(ObjectId),
    /// The live objects sum past the unit's capacity.
    OverCapacity {
        /// Bytes the restored objects occupy.
        used: ByteSize,
        /// The unit's configured capacity.
        capacity: ByteSize,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::DuplicateId(id) => {
                write!(f, "restored state holds object {} twice", id.raw())
            }
            RestoreError::OverCapacity { used, capacity } => {
                write!(
                    f,
                    "restored objects occupy {used}, over the {capacity} capacity"
                )
            }
        }
    }
}

impl StdError for RestoreError {}

impl From<RestoreError> for Error {
    fn from(e: RestoreError) -> Self {
        Error::external(e)
    }
}

/// An importance value outside the valid `[0, 1]` range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceError {
    /// The offending value.
    pub(crate) value: f64,
}

impl ImportanceError {
    /// The value that failed validation.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl fmt::Display for ImportanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "importance must be a finite value in [0, 1], got {}",
            self.value
        )
    }
}

impl StdError for ImportanceError {}

/// An invalid importance-curve specification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CurveError {
    /// A piecewise curve had no points.
    Empty,
    /// A piecewise curve's first point was not at age zero.
    MissingOrigin,
    /// Point ages were not strictly increasing.
    NonIncreasingAges {
        /// Index of the offending point.
        index: usize,
    },
    /// Importance values increased with age, violating the paper's
    /// requirement that curves be monotonically non-increasing (§3).
    IncreasingImportance {
        /// Index of the offending point.
        index: usize,
    },
    /// An exponential decay curve had a zero-length half life.
    ZeroHalfLife,
}

impl fmt::Display for CurveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CurveError::Empty => write!(f, "piecewise curve needs at least one point"),
            CurveError::MissingOrigin => {
                write!(f, "piecewise curve must start at age zero")
            }
            CurveError::NonIncreasingAges { index } => {
                write!(
                    f,
                    "piecewise curve ages must strictly increase (point {index})"
                )
            }
            CurveError::IncreasingImportance { index } => write!(
                f,
                "importance curves must be monotonically non-increasing (point {index})"
            ),
            CurveError::ZeroHalfLife => write!(f, "exponential decay half-life must be positive"),
        }
    }
}

impl StdError for CurveError {}

/// A store request that the unit could not satisfy.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The storage is *full* for this object: even after preempting every
    /// strictly-less-important object there is not enough room.
    ///
    /// `blocking` is the lowest current importance among objects that could
    /// not be preempted — the signal the paper feeds back to content
    /// creators ("objects with importance less than 0.25 cannot be stored",
    /// §5.1.2).
    Full {
        /// Bytes the object needs.
        required: ByteSize,
        /// Bytes reclaimable for it (free space + preemptible bytes).
        reclaimable: ByteSize,
        /// Lowest importance among non-preemptible objects, if any.
        blocking: Option<Importance>,
    },
    /// The object is larger than the unit's total capacity.
    TooLarge {
        /// Bytes the object needs.
        size: ByteSize,
        /// The unit's capacity.
        capacity: ByteSize,
    },
    /// An object with this id is already stored.
    DuplicateId(ObjectId),
    /// The object declared a zero size, which the store rejects to keep
    /// accounting meaningful.
    EmptyObject(ObjectId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Full {
                required,
                reclaimable,
                blocking,
            } => {
                write!(
                    f,
                    "storage full for this importance level: need {required}, reclaimable {reclaimable}"
                )?;
                if let Some(b) = blocking {
                    write!(f, ", blocked by importance {b}")?;
                }
                Ok(())
            }
            StoreError::TooLarge { size, capacity } => {
                write!(f, "object of {size} exceeds unit capacity {capacity}")
            }
            StoreError::DuplicateId(id) => write!(f, "object {id} is already stored"),
            StoreError::EmptyObject(id) => write!(f, "object {id} has zero size"),
        }
    }
}

impl StdError for StoreError {}

/// A failed re-annotation (rejuvenation) request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejuvenateError {
    /// No stored object has this id.
    NotFound(ObjectId),
    /// The replacement curve would *lower* the object's current importance.
    ///
    /// Rejuvenation exists so users can raise importance via "active
    /// intervention" (§3); lowering happens naturally through decay, and a
    /// silent drop would let a caller bypass preemption accounting.
    WouldLowerImportance {
        /// Importance under the existing annotation.
        current: Importance,
        /// Importance the replacement curve would start at.
        proposed: Importance,
    },
}

impl fmt::Display for RejuvenateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejuvenateError::NotFound(id) => write!(f, "object {id} is not stored here"),
            RejuvenateError::WouldLowerImportance { current, proposed } => write!(
                f,
                "rejuvenation cannot lower importance (current {current}, proposed {proposed})"
            ),
        }
    }
}

impl StdError for RejuvenateError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_error<E: StdError + Send + Sync + 'static>() {}

    #[test]
    fn error_types_are_well_behaved() {
        assert_error::<ImportanceError>();
        assert_error::<CurveError>();
        assert_error::<StoreError>();
        assert_error::<RejuvenateError>();
        assert_error::<Error>();
    }

    #[test]
    fn umbrella_error_preserves_message_and_source() {
        let store = StoreError::DuplicateId(ObjectId::new(7));
        let wrapped = Error::from(store.clone());
        assert_eq!(wrapped.to_string(), store.to_string());
        assert!(wrapped.source().is_some(), "source chain must survive");

        let external = Error::external(CurveError::ZeroHalfLife);
        assert!(matches!(external, Error::External(_)));
        assert_eq!(external.to_string(), CurveError::ZeroHalfLife.to_string());
        assert!(external
            .source()
            .unwrap()
            .downcast_ref::<CurveError>()
            .is_some());
    }

    #[test]
    fn service_variants_are_sourceless_and_descriptive() {
        let shard = Error::ShardUnavailable { shard: 3 };
        assert_eq!(shard.to_string(), "shard 3 is not accepting requests");
        assert!(shard.source().is_none());

        let full = Error::QueueFull { shard: 7 };
        assert_eq!(full.to_string(), "shard 7 ingest queue is full");
        assert!(full.source().is_none());

        let gone = Error::Disconnected;
        assert_eq!(gone.to_string(), "serving layer disconnected");
        assert!(gone.source().is_none());
    }

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = StoreError::TooLarge {
            size: ByteSize::from_gib(2),
            capacity: ByteSize::from_gib(1),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("object"));
        assert!(msg.contains("2.00 GiB"));

        let e = StoreError::Full {
            required: ByteSize::from_mib(10),
            reclaimable: ByteSize::from_mib(5),
            blocking: Some(Importance::new(0.25).unwrap()),
        };
        assert!(e.to_string().contains("0.2500"));
    }
}
