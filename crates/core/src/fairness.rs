//! Multi-user fairness: restricting importance functions per principal.
//!
//! §1 warns that "on a multi-user system, the system should restrict the
//! importance functions for fairness, lest every user request infinite
//! lifetime, essentially reverting to the traditional *persistent until
//! deleted* model". This module provides that restriction: a
//! [`FairStore`] wraps a [`StorageUnit`] and charges every stored byte to
//! its owner at the byte's *initial importance weight*, enforcing a per-
//! principal budget of importance-weighted bytes.
//!
//! Charging importance-weighted bytes (rather than raw bytes) creates the
//! right incentive: a user who annotates honestly at 0.5 importance can
//! store twice as many bytes as one who insists on 1.0, and ephemeral
//! data is free. Expired or evicted objects refund their charge.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimTime};

use crate::{EvictionRecord, ObjectId, ObjectSpec, StorageUnit, StoreError, StoreOutcome};

/// A storage principal (user / application) identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct PrincipalId(u32);

impl PrincipalId {
    /// Creates a principal id.
    pub const fn new(raw: u32) -> Self {
        PrincipalId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

/// A store refused by the fairness layer (before reaching the engine).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FairStoreError {
    /// The principal's importance-weighted budget cannot absorb this
    /// object.
    QuotaExceeded {
        /// The principal that ran out of budget.
        principal: PrincipalId,
        /// Importance-weighted bytes the object would charge.
        charge: u64,
        /// Importance-weighted bytes still available.
        remaining: u64,
    },
    /// The underlying engine refused the store.
    Store(StoreError),
}

impl fmt::Display for FairStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairStoreError::QuotaExceeded {
                principal,
                charge,
                remaining,
            } => write!(
                f,
                "{principal} exceeds fairness budget: needs {charge} weighted bytes, {remaining} remain"
            ),
            FairStoreError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FairStoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FairStoreError::Store(e) => Some(e),
            FairStoreError::QuotaExceeded { .. } => None,
        }
    }
}

impl From<StoreError> for FairStoreError {
    fn from(e: StoreError) -> Self {
        FairStoreError::Store(e)
    }
}

/// Per-principal accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrincipalUsage {
    /// Importance-weighted bytes currently charged.
    pub charged: u64,
    /// Stores accepted.
    pub accepted: u64,
    /// Stores refused by the quota (engine rejections are counted by the
    /// underlying unit's stats).
    pub quota_refusals: u64,
}

/// A fairness-enforcing wrapper around a [`StorageUnit`].
///
/// Every principal gets the same budget of importance-weighted bytes
/// (`budget = capacity / expected principals`, by default). The charge of
/// an object is `size × initial importance`, so honest low-importance
/// annotations stretch a budget further — the incentive §1 asks for.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration, SimTime};
/// use temporal_importance::{
///     FairStore, Importance, ImportanceCurve, ObjectId, ObjectSpec, PrincipalId,
///     StorageUnit,
/// };
///
/// let unit = StorageUnit::new(ByteSize::from_mib(100));
/// let mut store = FairStore::new(unit, ByteSize::from_mib(50));
///
/// let alice = PrincipalId::new(1);
/// let spec = ObjectSpec::new(
///     ObjectId::new(0),
///     ByteSize::from_mib(40),
///     ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
/// );
/// store.store(alice, spec, SimTime::ZERO)?;
/// // A second full-importance 40 MiB object would exceed Alice's 50 MiB
/// // weighted budget.
/// let spec = ObjectSpec::new(
///     ObjectId::new(1),
///     ByteSize::from_mib(40),
///     ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
/// );
/// assert!(store.store(alice, spec, SimTime::ZERO).is_err());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairStore {
    unit: StorageUnit,
    budget: u64,
    usage: BTreeMap<PrincipalId, PrincipalUsage>,
    owners: BTreeMap<ObjectId, (PrincipalId, u64)>,
}

impl FairStore {
    /// Wraps `unit`, giving every principal the same budget of
    /// importance-weighted bytes.
    pub fn new(unit: StorageUnit, budget: ByteSize) -> Self {
        FairStore {
            unit,
            budget: budget.as_bytes(),
            usage: BTreeMap::new(),
            owners: BTreeMap::new(),
        }
    }

    /// The per-principal budget in weighted bytes.
    pub fn budget(&self) -> ByteSize {
        ByteSize::from_bytes(self.budget)
    }

    /// The wrapped unit (read-only; mutation must flow through the
    /// fairness layer to keep accounting correct).
    pub fn unit(&self) -> &StorageUnit {
        &self.unit
    }

    /// A principal's current accounting.
    pub fn usage(&self, principal: PrincipalId) -> PrincipalUsage {
        self.usage.get(&principal).copied().unwrap_or_default()
    }

    /// The importance-weighted charge of a spec: `size × initial
    /// importance`, rounded up so nothing is free except true zero
    /// importance.
    pub fn charge_of(spec: &ObjectSpec) -> u64 {
        let weighted = spec.size().as_bytes() as f64 * spec.curve().initial_importance().value();
        weighted.ceil() as u64
    }

    /// Stores an object on behalf of `principal`, charging their budget.
    ///
    /// Objects evicted by the store's preemption refund their owners
    /// immediately.
    ///
    /// # Errors
    ///
    /// * [`FairStoreError::QuotaExceeded`] — the principal's budget cannot
    ///   absorb the charge; the engine is never consulted.
    /// * [`FairStoreError::Store`] — the engine refused the store.
    pub fn store(
        &mut self,
        principal: PrincipalId,
        spec: ObjectSpec,
        now: SimTime,
    ) -> Result<StoreOutcome, FairStoreError> {
        let charge = Self::charge_of(&spec);
        let usage = self.usage.entry(principal).or_default();
        let remaining = self.budget.saturating_sub(usage.charged);
        if charge > remaining {
            usage.quota_refusals += 1;
            return Err(FairStoreError::QuotaExceeded {
                principal,
                charge,
                remaining,
            });
        }

        let id = spec.id();
        let outcome = self.unit.store(spec, now)?;
        self.usage.entry(principal).or_default().charged += charge;
        self.usage.entry(principal).or_default().accepted += 1;
        self.owners.insert(id, (principal, charge));
        for victim in &outcome.evicted {
            self.refund(victim.id);
        }
        Ok(outcome)
    }

    /// Removes an object, refunding its owner's budget.
    pub fn remove(&mut self, id: ObjectId, now: SimTime) -> Option<EvictionRecord> {
        let record = self.unit.remove(id, now)?;
        self.refund(id);
        Some(record)
    }

    /// Sweeps expired objects and refunds their owners.
    pub fn sweep_expired(&mut self, now: SimTime) -> Vec<EvictionRecord> {
        let records = self.unit.sweep_expired(now);
        for record in &records {
            self.refund(record.id);
        }
        records
    }

    /// Total weighted bytes charged across all principals — always equal
    /// to the sum of live owners' charges.
    pub fn total_charged(&self) -> u64 {
        self.usage.values().map(|u| u.charged).sum()
    }

    fn refund(&mut self, id: ObjectId) {
        if let Some((principal, charge)) = self.owners.remove(&id) {
            if let Some(usage) = self.usage.get_mut(&principal) {
                usage.charged = usage.charged.saturating_sub(charge);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Importance, ImportanceCurve};
    use sim_core::SimDuration;

    fn spec(id: u64, mib: u64, importance: f64) -> ObjectSpec {
        ObjectSpec::new(
            ObjectId::new(id),
            ByteSize::from_mib(mib),
            ImportanceCurve::Fixed {
                importance: Importance::new(importance).unwrap(),
                expiry: SimDuration::from_days(30),
            },
        )
    }

    fn store_100mib_budget_50() -> FairStore {
        FairStore::new(
            StorageUnit::new(ByteSize::from_mib(100)),
            ByteSize::from_mib(50),
        )
    }

    #[test]
    fn charges_weighted_bytes() {
        assert_eq!(
            FairStore::charge_of(&spec(0, 40, 1.0)),
            ByteSize::from_mib(40).as_bytes()
        );
        assert_eq!(
            FairStore::charge_of(&spec(0, 40, 0.5)),
            ByteSize::from_mib(20).as_bytes()
        );
        let ephemeral = ObjectSpec::new(
            ObjectId::new(0),
            ByteSize::from_mib(40),
            ImportanceCurve::Ephemeral,
        );
        assert_eq!(FairStore::charge_of(&ephemeral), 0);
    }

    #[test]
    fn quota_blocks_greedy_full_importance_users() {
        let mut store = store_100mib_budget_50();
        let alice = PrincipalId::new(1);
        store.store(alice, spec(0, 40, 1.0), SimTime::ZERO).unwrap();
        let err = store
            .store(alice, spec(1, 40, 1.0), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, FairStoreError::QuotaExceeded { .. }));
        assert_eq!(store.usage(alice).quota_refusals, 1);
        assert_eq!(store.usage(alice).accepted, 1);
    }

    #[test]
    fn honest_annotations_stretch_the_budget() {
        let mut store = store_100mib_budget_50();
        let bob = PrincipalId::new(2);
        // At 0.5 importance, 40 MiB charges only 20 MiB of budget: two fit.
        store.store(bob, spec(0, 40, 0.5), SimTime::ZERO).unwrap();
        store.store(bob, spec(1, 40, 0.5), SimTime::ZERO).unwrap();
        assert_eq!(store.usage(bob).accepted, 2);
        assert_eq!(store.usage(bob).charged, ByteSize::from_mib(40).as_bytes());
    }

    #[test]
    fn budgets_are_per_principal() {
        let mut store = store_100mib_budget_50();
        store
            .store(PrincipalId::new(1), spec(0, 50, 1.0), SimTime::ZERO)
            .unwrap();
        // A different user has an untouched budget.
        store
            .store(PrincipalId::new(2), spec(1, 50, 1.0), SimTime::ZERO)
            .unwrap();
        assert_eq!(store.total_charged(), ByteSize::from_mib(100).as_bytes());
    }

    #[test]
    fn eviction_refunds_the_victims_owner() {
        let mut store = store_100mib_budget_50();
        let alice = PrincipalId::new(1);
        let bob = PrincipalId::new(2);
        // Alice fills the disk at low importance (charge 50 × 0.4 = 20 MiB
        // twice — fits her budget).
        store.store(alice, spec(0, 50, 0.4), SimTime::ZERO).unwrap();
        store.store(alice, spec(1, 50, 0.4), SimTime::ZERO).unwrap();
        let charged_before = store.usage(alice).charged;
        // Bob preempts one of Alice's objects; she gets refunded.
        let outcome = store.store(bob, spec(2, 50, 0.9), SimTime::ZERO).unwrap();
        assert_eq!(outcome.evicted.len(), 1);
        assert!(store.usage(alice).charged < charged_before);
        // Conservation: total charged equals live owners' charges.
        assert_eq!(
            store.total_charged(),
            ByteSize::from_mib(50).as_bytes() * 4 / 10
                + (ByteSize::from_mib(50).as_bytes() as f64 * 0.9).ceil() as u64
        );
    }

    #[test]
    fn explicit_remove_and_sweep_refund() {
        let mut store = store_100mib_budget_50();
        let alice = PrincipalId::new(1);
        store.store(alice, spec(0, 30, 1.0), SimTime::ZERO).unwrap();
        store
            .remove(ObjectId::new(0), SimTime::from_days(1))
            .unwrap();
        assert_eq!(store.usage(alice).charged, 0);

        store
            .store(alice, spec(1, 30, 1.0), SimTime::from_days(1))
            .unwrap();
        let swept = store.sweep_expired(SimTime::from_days(60));
        assert_eq!(swept.len(), 1);
        assert_eq!(store.usage(alice).charged, 0);
        assert_eq!(store.total_charged(), 0);
    }

    #[test]
    fn engine_errors_pass_through() {
        let mut store = store_100mib_budget_50();
        let err = store
            .store(
                PrincipalId::new(1),
                spec(0, 500, 0.1), // bigger than the unit
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            FairStoreError::Store(StoreError::TooLarge { .. })
        ));
        // The quota was not charged for the failed store.
        assert_eq!(store.usage(PrincipalId::new(1)).charged, 0);
    }
}
