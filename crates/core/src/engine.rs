//! Incrementally maintained indexes over a [`StorageUnit`]'s objects.
//!
//! The naive engine re-evaluates every stored object's curve on every
//! plan/sweep/density query. This module exploits the fact that importance
//! curves are *monotone, piecewise-analytic* functions of age: each object
//! changes analytic form only at a handful of breakpoints, so the engine
//! can keep objects classified by their current form and update that
//! classification with one queue event per breakpoint.
//!
//! The index maintains, keyed off an internal clock that only moves
//! forward:
//!
//! * an **event queue** of curve breakpoints (`events`), so advancing time
//!   touches only the objects whose analytic form actually changes;
//! * an **expired set** ordered by `(arrival, id)` — exactly the naive
//!   engine's eviction order among zero-importance objects;
//! * **shape groups**: same-curve objects ordered by `(annotated_at,
//!   arrival, id)`. Because members share a curve, older annotations have
//!   lower current importance and (for finite-expiry curves) lower
//!   remaining lifetime, so group order equals the §5.3 eviction order and
//!   stays valid as time passes *without any updates*;
//! * a **settled set** of never-expiring objects on their final constant
//!   segment, ordered by importance bits — their relative order is frozen
//!   forever;
//! * **density accumulators**: the weighted importance sum decomposed into
//!   a linear part (value at a reference time plus aggregate slope) and
//!   per-half-life exponential parts, giving O(1) density reads.
//!
//! Preemption planning k-way merges the expired set, the settled set and
//! the group cursors, lazily computing each head's exact eviction key, so
//! it visits `O(victims + groups)` objects instead of all of them.
//!
//! [`StorageUnit`]: crate::StorageUnit

use std::collections::{BTreeMap, BTreeSet, HashMap};

use sim_core::{Obs, SimDuration, SimTime};

use crate::curve::SegmentForm;
use crate::{ImportanceCurve, ObjectId, StoredObject};

/// Hashable identity of a curve's shape: two objects with the same
/// `ShapeKey` have pointwise-identical curves (floats compared by bit
/// pattern, which is exact for the validated `[0, 1]` importance range).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ShapeKey {
    Persistent,
    Fixed {
        imp: u64,
        expiry: u64,
    },
    Ephemeral,
    TwoStep {
        imp: u64,
        persist: u64,
        wane: u64,
    },
    ExpDecay {
        imp: u64,
        persist: u64,
        wane: u64,
        half_life: u64,
    },
    Piecewise(Vec<(u64, u64)>),
}

impl ShapeKey {
    fn of(curve: &ImportanceCurve) -> ShapeKey {
        match curve {
            ImportanceCurve::Persistent => ShapeKey::Persistent,
            ImportanceCurve::Fixed { importance, expiry } => ShapeKey::Fixed {
                imp: importance.value().to_bits(),
                expiry: expiry.as_minutes(),
            },
            ImportanceCurve::Ephemeral => ShapeKey::Ephemeral,
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            } => ShapeKey::TwoStep {
                imp: importance.value().to_bits(),
                persist: persist.as_minutes(),
                wane: wane.as_minutes(),
            },
            ImportanceCurve::ExpDecay {
                importance,
                persist,
                wane,
                half_life,
            } => ShapeKey::ExpDecay {
                imp: importance.value().to_bits(),
                persist: persist.as_minutes(),
                wane: wane.as_minutes(),
                half_life: half_life.as_minutes(),
            },
            ImportanceCurve::Piecewise(curve) => ShapeKey::Piecewise(
                curve
                    .points()
                    .iter()
                    .map(|&(age, imp)| (age.as_minutes(), imp.value().to_bits()))
                    .collect(),
            ),
        }
    }
}

/// Which ordered candidate structure an object currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    /// Shape group `groups[i]`, keyed by `(annotated_at, arrival, id)`.
    Group(usize),
    /// Never-expiring final constant segment, keyed by the value's bits.
    Settled(u64),
    /// Expired with importance zero, keyed by `(arrival, id)`.
    Expired,
}

/// The object's registration in the density accumulators.
#[derive(Debug, Clone, PartialEq)]
enum Registered {
    /// Identically-zero contribution; nothing registered.
    None,
    /// A constant or linear form, folded into the linear accumulator.
    Linear(SegmentForm),
    /// An exponential form, folded into the per-half-life accumulator.
    Exp {
        start: SimDuration,
        peak: f64,
        half_life: SimDuration,
    },
}

/// Breakpoint event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// The object's curve moves to its next analytic segment.
    Segment,
    /// An expired object still carries positive importance for exactly the
    /// expiry minute (a zero-wane step curve at `age == expiry`); this
    /// event retires it into the expired set one minute later. While such
    /// an event is pending, expired candidates can hide *behind*
    /// non-preemptible group members, so planning must not early-stop.
    Finalize,
}

/// Per-object index entry, capturing the state the object was classified
/// with so it can be unregistered exactly even after the object mutates.
#[derive(Debug, Clone)]
struct Entry {
    ann: SimTime,
    arrival: SimTime,
    size_f: f64,
    home: Home,
    reg: Registered,
    event: Option<SimTime>,
}

/// Neumaier-compensated running sum: keeps the density accumulators
/// accurate through millions of incremental add/remove/integrate steps.
#[derive(Debug, Clone, Copy, Default)]
struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    fn total(&self) -> f64 {
        self.sum + self.compensation
    }

    fn scale(&mut self, k: f64) {
        self.sum *= k;
        self.compensation *= k;
    }

    fn reset(&mut self) {
        *self = CompensatedSum::default();
    }
}

/// Aggregate of exponential-form contributions sharing one half-life:
/// their weighted sum decays by the same factor, so one rebase covers all.
#[derive(Debug, Clone)]
struct ExpAggregate {
    at: SimTime,
    value: CompensatedSum,
    count: usize,
}

/// The weighted-importance sum `Σ size·L(age)`, maintained incrementally.
#[derive(Debug, Clone, Default)]
struct DensityAccum {
    /// Reference time the linear part is valued at.
    at: SimTime,
    /// `Σ size·value` over constant/linear registrations, valued at `at`.
    linear_value: CompensatedSum,
    /// `Σ size·slope` (per minute) over linear registrations.
    linear_slope: CompensatedSum,
    linear_count: usize,
    /// Exponential registrations bucketed by half-life minutes.
    exp: BTreeMap<u64, ExpAggregate>,
}

impl DensityAccum {
    /// Moves the linear reference point forward to `t`.
    fn integrate_to(&mut self, t: SimTime) {
        if t > self.at {
            if self.linear_count > 0 {
                let minutes = (t - self.at).as_minutes() as f64;
                self.linear_value.add(self.linear_slope.total() * minutes);
            }
            self.at = t;
        }
    }

    fn signed_update(&mut self, reg: &Registered, size_f: f64, ann: SimTime, sign: f64) {
        match reg {
            Registered::None => {}
            Registered::Linear(form) => {
                let age = self.at.saturating_since(ann);
                self.linear_value.add(sign * size_f * form.value_at(age));
                if let SegmentForm::Linear { a0, v0, a1, v1 } = *form {
                    let per_minute = (v1 - v0) / (a1 - a0).as_minutes() as f64;
                    self.linear_slope.add(sign * size_f * per_minute);
                }
                if sign > 0.0 {
                    self.linear_count += 1;
                } else {
                    self.linear_count -= 1;
                    if self.linear_count == 0 {
                        // Exact-zero reset: an emptied accumulator reports
                        // 0.0 with no floating-point residue.
                        self.linear_value.reset();
                        self.linear_slope.reset();
                    }
                }
            }
            Registered::Exp {
                start,
                peak,
                half_life,
            } => {
                let at = self.at;
                let agg = self
                    .exp
                    .entry(half_life.as_minutes())
                    .or_insert_with(|| ExpAggregate {
                        at,
                        value: CompensatedSum::default(),
                        count: 0,
                    });
                if at > agg.at {
                    let halves = at.saturating_since(agg.at).ratio(*half_life);
                    agg.value.scale(0.5_f64.powf(halves));
                    agg.at = at;
                }
                let into_decay = at.saturating_since(ann).saturating_sub(*start);
                let halves = into_decay.ratio(*half_life);
                agg.value.add(sign * size_f * peak * 0.5_f64.powf(halves));
                if sign > 0.0 {
                    agg.count += 1;
                } else {
                    agg.count -= 1;
                    if agg.count == 0 {
                        self.exp.remove(&half_life.as_minutes());
                    }
                }
            }
        }
    }

    /// The weighted sum extrapolated to `now` (`now >= self.at`).
    fn value_at(&self, now: SimTime) -> f64 {
        let minutes = now.saturating_since(self.at).as_minutes() as f64;
        let mut total = self.linear_value.total() + self.linear_slope.total() * minutes;
        for (&half_life, agg) in &self.exp {
            let halves = now.saturating_since(agg.at).as_minutes() as f64 / half_life as f64;
            total += agg.value.total() * 0.5_f64.powf(halves);
        }
        total
    }
}

/// The incremental index over a unit's objects. Rebuilt from scratch after
/// deserialization (every field is `#[serde(skip)]` on the unit).
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineIndex {
    /// The time the index is classified at; only moves forward.
    clock: SimTime,
    entries: HashMap<ObjectId, Entry>,
    /// Pending breakpoints, keyed `(fire time, id)`.
    events: BTreeMap<(SimTime, ObjectId), EventKind>,
    /// Expired zero-importance objects in `(arrival, id)` eviction order.
    expired: BTreeSet<(SimTime, ObjectId)>,
    /// All objects in `(arrival, id)` order — the FIFO eviction order.
    fifo: BTreeSet<(SimTime, ObjectId)>,
    /// Never-expiring final-segment objects by `(value bits, arrival, id)`.
    settled: BTreeSet<(u64, SimTime, ObjectId)>,
    /// Same-shape cohorts in `(annotated_at, arrival, id)` order.
    groups: Vec<BTreeSet<(SimTime, SimTime, ObjectId)>>,
    group_ids: HashMap<ShapeKey, usize>,
    density: DensityAccum,
}

impl EngineIndex {
    pub(crate) fn clock(&self) -> SimTime {
        self.clock
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of pending curve breakpoints — the depth of the index's
    /// event queue, reported as an observability gauge.
    pub(crate) fn events_len(&self) -> usize {
        self.events.len()
    }

    /// True when every breakpoint at or before `now` has been processed.
    pub(crate) fn events_processed_through(&self, now: SimTime) -> bool {
        self.events
            .range(..=(now, ObjectId::new(u64::MAX)))
            .next()
            .is_none()
    }

    /// True when a [`EventKind::Finalize`] is pending for the minute after
    /// `now`, i.e. some expired object still carries positive importance.
    pub(crate) fn finalize_pending(&self, now: SimTime) -> bool {
        let at = now + SimDuration::MINUTE;
        self.events
            .range((at, ObjectId::new(0))..=(at, ObjectId::new(u64::MAX)))
            .any(|(_, kind)| *kind == EventKind::Finalize)
    }

    /// Ids of every expired object (importance zero *or* positive at the
    /// expiry-minute boundary), in ascending id order — the order the
    /// naive full-scan sweep evicts in.
    pub(crate) fn expired_ids(&self, now: SimTime) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.expired.iter().map(|&(_, id)| id).collect();
        let at = now + SimDuration::MINUTE;
        ids.extend(
            self.events
                .range((at, ObjectId::new(0))..=(at, ObjectId::new(u64::MAX)))
                .filter(|(_, kind)| **kind == EventKind::Finalize)
                .map(|(&(_, id), _)| id),
        );
        ids.sort_unstable();
        ids
    }

    /// Rebuilds the whole index at `now` (post-deserialization path).
    pub(crate) fn rebuild(&mut self, objects: &BTreeMap<ObjectId, StoredObject>, now: SimTime) {
        *self = EngineIndex {
            clock: self.clock.max(now),
            ..EngineIndex::default()
        };
        self.density.at = self.clock;
        for object in objects.values() {
            self.insert(object);
        }
    }

    /// Processes every breakpoint due at or before `now` and advances the
    /// clock. `objects` must contain exactly the indexed objects. Each
    /// processed breakpoint is reported to `obs` as an `engine.breakpoint`
    /// event keyed by the breakpoint's own instant, so traces expose an
    /// object's full importance-curve lifecycle.
    pub(crate) fn advance(
        &mut self,
        objects: &BTreeMap<ObjectId, StoredObject>,
        now: SimTime,
        obs: &Obs,
    ) {
        if now <= self.clock {
            return;
        }
        while let Some((&(t, id), &kind)) =
            self.events.range(..=(now, ObjectId::new(u64::MAX))).next()
        {
            self.density.integrate_to(t);
            self.clock = t;
            self.events.remove(&(t, id));
            self.entries
                .get_mut(&id)
                .expect("event for unindexed object")
                .event = None;
            let object = objects.get(&id).expect("event for missing object");
            self.unregister(id);
            self.register(object);
            obs.event(
                t,
                "engine.breakpoint",
                &[
                    ("id", id.raw()),
                    ("finalize", (kind == EventKind::Finalize) as u64),
                ],
            );
        }
        self.density.integrate_to(now);
        self.clock = now;
    }

    /// Indexes a newly stored object (classified at the current clock).
    pub(crate) fn insert(&mut self, object: &StoredObject) {
        self.fifo.insert((object.arrival(), object.id()));
        self.register(object);
    }

    /// Drops an object from the index entirely (eviction/removal). A no-op
    /// if the object was never indexed (pre-rebuild state).
    pub(crate) fn remove(&mut self, id: ObjectId) {
        if let Some(entry) = self.entries.get(&id) {
            let arrival = entry.arrival;
            self.unregister(id);
            self.fifo.remove(&(arrival, id));
        }
    }

    /// Re-indexes an object after its annotation changed in place.
    pub(crate) fn reannotate(&mut self, object: &StoredObject) {
        if self.entries.contains_key(&object.id()) {
            self.unregister(object.id());
            self.register(object);
        }
    }

    /// Classifies `object` at the current clock and adds it to its home
    /// structure, the density accumulators and (if needed) the event queue.
    fn register(&mut self, object: &StoredObject) {
        let id = object.id();
        let ann = object.annotated_at();
        let arrival = object.arrival();
        let size_f = object.size().as_bytes() as f64;
        let age = self.clock.saturating_since(ann);
        let expired = object.is_expired(self.clock);
        let value = object.current_importance(self.clock).value();

        let (home, reg, event) = if expired && value == 0.0 {
            (Home::Expired, Registered::None, None)
        } else {
            let segment = object.curve().segment_at(age);
            let reg = registration(&segment.form);
            if expired {
                // Positive importance at the expiry minute: a zero-wane
                // step curve observed at exactly `age == expiry`. It keeps
                // its group position for this minute and finalizes into
                // the expired set at the next one.
                let fire = ann + segment.next.expect("step boundary has a next breakpoint");
                let group = self.group_of(object.curve());
                self.groups[group].insert((ann, arrival, id));
                self.events.insert((fire, id), EventKind::Finalize);
                (Home::Group(group), reg, Some(fire))
            } else if segment.next.is_none() && matches!(segment.form, SegmentForm::Constant(_)) {
                // Final constant segment of a never-expiring curve: its
                // importance is frozen, so order by the value itself.
                let bits = value.to_bits();
                self.settled.insert((bits, arrival, id));
                (Home::Settled(bits), reg, None)
            } else {
                let group = self.group_of(object.curve());
                self.groups[group].insert((ann, arrival, id));
                let fire = segment.next.map(|next| ann + next);
                if let Some(fire) = fire {
                    self.events.insert((fire, id), EventKind::Segment);
                }
                (Home::Group(group), reg, fire)
            }
        };
        if home == Home::Expired {
            self.expired.insert((arrival, id));
        }
        self.density.signed_update(&reg, size_f, ann, 1.0);
        self.entries.insert(
            id,
            Entry {
                ann,
                arrival,
                size_f,
                home,
                reg,
                event,
            },
        );
    }

    /// Removes an object from its home structure, the density accumulators
    /// and the event queue, using the state captured at registration.
    fn unregister(&mut self, id: ObjectId) {
        let entry = self.entries.remove(&id).expect("unregister unindexed id");
        match entry.home {
            Home::Group(group) => {
                self.groups[group].remove(&(entry.ann, entry.arrival, id));
            }
            Home::Settled(bits) => {
                self.settled.remove(&(bits, entry.arrival, id));
            }
            Home::Expired => {
                self.expired.remove(&(entry.arrival, id));
            }
        }
        if let Some(fire) = entry.event {
            self.events.remove(&(fire, id));
        }
        self.density
            .signed_update(&entry.reg, entry.size_f, entry.ann, -1.0);
    }

    fn group_of(&mut self, curve: &ImportanceCurve) -> usize {
        let groups = &mut self.groups;
        *self
            .group_ids
            .entry(ShapeKey::of(curve))
            .or_insert_with(|| {
                groups.push(BTreeSet::new());
                groups.len() - 1
            })
    }

    /// The weighted importance sum `Σ size·L(now)` (`now >= clock`).
    pub(crate) fn weighted_importance(&self, now: SimTime) -> f64 {
        self.density.value_at(now)
    }

    /// Candidate streams for preemption planning: the expired set, the
    /// settled set and every non-empty group, each yielding ids in that
    /// structure's eviction order.
    pub(crate) fn candidate_streams(&self) -> Vec<Box<dyn Iterator<Item = ObjectId> + '_>> {
        let mut streams: Vec<Box<dyn Iterator<Item = ObjectId> + '_>> = Vec::new();
        if !self.expired.is_empty() {
            streams.push(Box::new(self.expired.iter().map(|&(_, id)| id)));
        }
        if !self.settled.is_empty() {
            streams.push(Box::new(self.settled.iter().map(|&(_, _, id)| id)));
        }
        for group in &self.groups {
            if !group.is_empty() {
                streams.push(Box::new(group.iter().map(|&(_, _, id)| id)));
            }
        }
        streams
    }

    /// The FIFO eviction order, `(arrival, id)` ascending.
    pub(crate) fn fifo_order(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.fifo.iter().map(|&(_, id)| id)
    }
}

/// How a segment form contributes to the density accumulators.
fn registration(form: &SegmentForm) -> Registered {
    match form {
        SegmentForm::Constant(c) if *c == 0.0 => Registered::None,
        SegmentForm::Constant(_) | SegmentForm::Linear { .. } => Registered::Linear(form.clone()),
        SegmentForm::Exp {
            start,
            peak,
            half_life,
        } => Registered::Exp {
            start: *start,
            peak: *peak,
            half_life: *half_life,
        },
    }
}
