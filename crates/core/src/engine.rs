//! Incrementally maintained indexes over a [`StorageUnit`]'s objects.
//!
//! The naive engine re-evaluates every stored object's curve on every
//! plan/sweep/density query. This module exploits the fact that importance
//! curves are *monotone, piecewise-analytic* functions of age: each object
//! changes analytic form only at a handful of breakpoints, so the engine
//! can keep objects classified by their current form and update that
//! classification with one queue event per breakpoint.
//!
//! The index maintains, keyed off an internal clock that only moves
//! forward:
//!
//! * an **event queue** of curve breakpoints (`events`), so advancing time
//!   touches only the objects whose analytic form actually changes;
//! * an **expired set** ordered by `(arrival, id)` — exactly the naive
//!   engine's eviction order among zero-importance objects;
//! * **shape groups**: same-curve objects ordered by `(annotated_at,
//!   arrival, id)`. Because members share a curve, older annotations have
//!   lower current importance and (for finite-expiry curves) lower
//!   remaining lifetime, so group order equals the §5.3 eviction order and
//!   stays valid as time passes *without any updates*;
//! * a **settled set** of never-expiring objects on their final constant
//!   segment, ordered by importance bits — their relative order is frozen
//!   forever;
//! * **density accumulators**: the weighted importance sum decomposed into
//!   a linear part (value at a reference time plus aggregate slope) and
//!   per-half-life exponential parts, giving O(1) density reads.
//!
//! All of this is laid out over the unit's [`ObjectArena`] slots: the
//! ordered structures are [`SortedList`]s mapping eviction keys to dense
//! `u32` slots (struct-of-arrays, no per-entry allocation), and per-object
//! classification state lives in slot-indexed [`TotalMap`] columns instead
//! of an id-keyed hash map. Entry keys still end in `ObjectId` — ids are
//! the §5.3 tiebreaker — but every lookup from a candidate back to its
//! object is a vector index, not a hash probe. The iteration order of each
//! list equals the `BTreeSet` ordering it replaced, which the golden trace
//! pins.
//!
//! Preemption planning k-way merges the expired set, the settled set and
//! the group cursors, lazily computing each head's exact eviction key, so
//! it visits `O(victims + groups)` objects instead of all of them.
//!
//! [`StorageUnit`]: crate::StorageUnit

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use sim_core::fx::FxHashMap;
use sim_core::{Obs, SimDuration, SimTime};

use crate::arena::ObjectArena;
use crate::curve::SegmentForm;
use crate::dense::{SortedList, TotalMap};
use crate::{EvictionPolicy, Importance, ImportanceCurve, ObjectId, StoredObject};

/// The §5.3 eviction order as a total order: ascending current importance,
/// then remaining lifetime with never-expiring objects last, then arrival,
/// then id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EvictionKey {
    pub(crate) importance: Importance,
    pub(crate) never_expires: bool,
    pub(crate) remaining: u64,
    pub(crate) arrival: SimTime,
    pub(crate) id: ObjectId,
}

/// Hashable identity of a curve's shape: two objects with the same
/// `ShapeKey` have pointwise-identical curves (floats compared by bit
/// pattern, which is exact for the validated `[0, 1]` importance range).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ShapeKey {
    Persistent,
    Fixed {
        imp: u64,
        expiry: u64,
    },
    Ephemeral,
    TwoStep {
        imp: u64,
        persist: u64,
        wane: u64,
    },
    ExpDecay {
        imp: u64,
        persist: u64,
        wane: u64,
        half_life: u64,
    },
    Piecewise(Vec<(u64, u64)>),
}

impl ShapeKey {
    fn of(curve: &ImportanceCurve) -> ShapeKey {
        match curve {
            ImportanceCurve::Persistent => ShapeKey::Persistent,
            ImportanceCurve::Fixed { importance, expiry } => ShapeKey::Fixed {
                imp: importance.value().to_bits(),
                expiry: expiry.as_minutes(),
            },
            ImportanceCurve::Ephemeral => ShapeKey::Ephemeral,
            ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            } => ShapeKey::TwoStep {
                imp: importance.value().to_bits(),
                persist: persist.as_minutes(),
                wane: wane.as_minutes(),
            },
            ImportanceCurve::ExpDecay {
                importance,
                persist,
                wane,
                half_life,
            } => ShapeKey::ExpDecay {
                imp: importance.value().to_bits(),
                persist: persist.as_minutes(),
                wane: wane.as_minutes(),
                half_life: half_life.as_minutes(),
            },
            ImportanceCurve::Piecewise(curve) => ShapeKey::Piecewise(
                curve
                    .points()
                    .iter()
                    .map(|&(age, imp)| (age.as_minutes(), imp.value().to_bits()))
                    .collect(),
            ),
        }
    }
}

/// Which ordered candidate structure an object currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Home {
    /// Not indexed — the [`TotalMap`] default for unoccupied slots.
    Absent,
    /// Shape group `groups[i]`, keyed by `(annotated_at, arrival, id)`.
    Group(u32),
    /// Never-expiring final constant segment, keyed by the value's bits.
    Settled(u64),
    /// Expired with importance zero, keyed by `(arrival, id)`.
    Expired,
}

/// The object's registration in the density accumulators.
#[derive(Debug, Clone, PartialEq)]
enum Registered {
    /// Identically-zero contribution; nothing registered.
    None,
    /// A constant or linear form, folded into the linear accumulator.
    Linear(SegmentForm),
    /// An exponential form, folded into the per-half-life accumulator.
    Exp {
        start: SimDuration,
        peak: f64,
        half_life: SimDuration,
    },
}

/// Breakpoint event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// The object's curve moves to its next analytic segment.
    Segment,
    /// An expired object still carries positive importance for exactly the
    /// expiry minute (a zero-wane step curve at `age == expiry`); this
    /// event retires it into the expired set one minute later. While such
    /// an event is pending, expired candidates can hide *behind*
    /// non-preemptible group members, so planning must not early-stop.
    Finalize,
}

/// A pending breakpoint in the lazy event heap: `(fire time, id, slot)`.
/// Min-ordered by `(fire, id)`; the slot rides along so a popped entry can
/// be validated against the per-slot columns without a lookup.
type EventEntry = Reverse<(SimTime, ObjectId, u32)>;

/// Neumaier-compensated running sum: keeps the density accumulators
/// accurate through millions of incremental add/remove/integrate steps.
#[derive(Debug, Clone, Copy, Default)]
struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    fn total(&self) -> f64 {
        self.sum + self.compensation
    }

    fn scale(&mut self, k: f64) {
        self.sum *= k;
        self.compensation *= k;
    }

    fn reset(&mut self) {
        *self = CompensatedSum::default();
    }
}

/// Aggregate of exponential-form contributions sharing one half-life:
/// their weighted sum decays by the same factor, so one rebase covers all.
#[derive(Debug, Clone)]
struct ExpAggregate {
    at: SimTime,
    value: CompensatedSum,
    count: usize,
}

/// The weighted-importance sum `Σ size·L(age)`, maintained incrementally.
#[derive(Debug, Clone, Default)]
struct DensityAccum {
    /// Reference time the linear part is valued at.
    at: SimTime,
    /// `Σ size·value` over constant/linear registrations, valued at `at`.
    linear_value: CompensatedSum,
    /// `Σ size·slope` (per minute) over linear registrations.
    linear_slope: CompensatedSum,
    linear_count: usize,
    /// Exponential registrations bucketed by half-life minutes.
    exp: BTreeMap<u64, ExpAggregate>,
}

impl DensityAccum {
    /// Moves the linear reference point forward to `t`.
    fn integrate_to(&mut self, t: SimTime) {
        if t > self.at {
            if self.linear_count > 0 {
                let minutes = (t - self.at).as_minutes() as f64;
                self.linear_value.add(self.linear_slope.total() * minutes);
            }
            self.at = t;
        }
    }

    fn signed_update(&mut self, reg: &Registered, size_f: f64, ann: SimTime, sign: f64) {
        match reg {
            Registered::None => {}
            Registered::Linear(form) => {
                let age = self.at.saturating_since(ann);
                self.linear_value.add(sign * size_f * form.value_at(age));
                if let SegmentForm::Linear { a0, v0, a1, v1 } = *form {
                    let per_minute = (v1 - v0) / (a1 - a0).as_minutes() as f64;
                    self.linear_slope.add(sign * size_f * per_minute);
                }
                if sign > 0.0 {
                    self.linear_count += 1;
                } else {
                    self.linear_count -= 1;
                    if self.linear_count == 0 {
                        // Exact-zero reset: an emptied accumulator reports
                        // 0.0 with no floating-point residue.
                        self.linear_value.reset();
                        self.linear_slope.reset();
                    }
                }
            }
            Registered::Exp {
                start,
                peak,
                half_life,
            } => {
                let at = self.at;
                let agg = self
                    .exp
                    .entry(half_life.as_minutes())
                    .or_insert_with(|| ExpAggregate {
                        at,
                        value: CompensatedSum::default(),
                        count: 0,
                    });
                if at > agg.at {
                    let halves = at.saturating_since(agg.at).ratio(*half_life);
                    agg.value.scale(0.5_f64.powf(halves));
                    agg.at = at;
                }
                let into_decay = at.saturating_since(ann).saturating_sub(*start);
                let halves = into_decay.ratio(*half_life);
                agg.value.add(sign * size_f * peak * 0.5_f64.powf(halves));
                if sign > 0.0 {
                    agg.count += 1;
                } else {
                    agg.count -= 1;
                    if agg.count == 0 {
                        self.exp.remove(&half_life.as_minutes());
                    }
                }
            }
        }
    }

    /// The weighted sum extrapolated to `now` (`now >= self.at`).
    fn value_at(&self, now: SimTime) -> f64 {
        let minutes = now.saturating_since(self.at).as_minutes() as f64;
        let mut total = self.linear_value.total() + self.linear_slope.total() * minutes;
        for (&half_life, agg) in &self.exp {
            let halves = now.saturating_since(agg.at).as_minutes() as f64 / half_life as f64;
            total += agg.value.total() * 0.5_f64.powf(halves);
        }
        total
    }
}

/// The incremental index over a unit's objects. Rebuilt from scratch after
/// deserialization (every field is `#[serde(skip)]` on the unit).
///
/// Ordered structures are [`SortedList`]s whose payloads are arena slots;
/// per-object classification state lives in slot-indexed [`TotalMap`]
/// columns (struct-of-arrays) so registering/unregistering an object never
/// hashes its id.
#[derive(Debug, Clone)]
pub(crate) struct EngineIndex {
    /// The time the index is classified at; only moves forward.
    clock: SimTime,
    /// Number of indexed objects.
    len: usize,
    /// Per-slot ids of indexed objects (meaningful only while the slot's
    /// `event` column is populated — it gates heap-entry validation).
    ids: TotalMap<ObjectId>,
    /// Per-slot annotation instants of indexed objects.
    ann: TotalMap<SimTime>,
    /// Per-slot arrival instants of indexed objects.
    arrival: TotalMap<SimTime>,
    /// Per-slot object sizes as floats (density weights).
    size_f: TotalMap<f64>,
    /// Per-slot candidate-structure membership.
    home: TotalMap<Home>,
    /// Per-slot density registrations.
    reg: TotalMap<Registered>,
    /// Per-slot pending breakpoint instant and kind — the authoritative
    /// record a heap entry must match to be live.
    event: TotalMap<Option<(SimTime, EventKind)>>,
    /// Pending breakpoints as a min-heap with *lazy deletion*: cancelling
    /// an event just clears the slot's `event` column, and stale heap
    /// entries are discarded when they surface. Breakpoint re-registration
    /// fire times are not monotone, so a sorted vector would pay an O(n)
    /// memmove per event; the heap pays O(log n) with no ordering
    /// assumption and still pops in exactly the `(fire, id)` order the
    /// id-keyed map used to iterate in.
    events: BinaryHeap<EventEntry>,
    /// Live (non-cancelled) event count — the breakpoint-queue gauge.
    events_live: usize,
    /// Cancelled entries still buried in `events`; when they outnumber the
    /// live ones the heap is rebuilt (amortized O(1) per cancel).
    events_stale: usize,
    /// The rare [`EventKind::Finalize`] breakpoints, keyed `(fire, id)` —
    /// kept sorted so `finalize_pending`/`expired_ids` can range-scan one
    /// minute without touching the heap.
    finalizes: SortedList<(SimTime, ObjectId)>,
    /// Expired zero-importance objects in `(arrival, id)` eviction order.
    expired: SortedList<(SimTime, ObjectId)>,
    /// All objects in `(arrival, id)` order — the FIFO eviction order.
    /// Maintained only when `track_fifo` is set.
    fifo: SortedList<(SimTime, ObjectId)>,
    /// Whether the FIFO list is kept up. Only the [`EvictionPolicy::Fifo`]
    /// planner reads it, so preemptive units skip its per-operation
    /// binary-search maintenance entirely.
    ///
    /// [`EvictionPolicy::Fifo`]: crate::EvictionPolicy::Fifo
    track_fifo: bool,
    /// Never-expiring final-segment objects by `(value bits, arrival, id)`.
    settled: SortedList<(u64, SimTime, ObjectId)>,
    /// Same-shape cohorts in `(annotated_at, arrival, id)` order.
    groups: Vec<SortedList<(SimTime, SimTime, ObjectId)>>,
    /// One representative curve per group — pointwise identical to every
    /// member's curve (the [`ShapeKey`] contract), so stream heads can
    /// compute exact eviction keys without touching any `StoredObject`.
    group_curves: Vec<ImportanceCurve>,
    group_ids: FxHashMap<ShapeKey, u32>,
    density: DensityAccum,
}

impl Default for EngineIndex {
    fn default() -> Self {
        EngineIndex {
            clock: SimTime::ZERO,
            len: 0,
            ids: TotalMap::new(ObjectId::new(0)),
            ann: TotalMap::new(SimTime::ZERO),
            arrival: TotalMap::new(SimTime::ZERO),
            size_f: TotalMap::new(0.0),
            home: TotalMap::new(Home::Absent),
            reg: TotalMap::new(Registered::None),
            event: TotalMap::new(None),
            events: BinaryHeap::new(),
            events_live: 0,
            events_stale: 0,
            finalizes: SortedList::new(),
            expired: SortedList::new(),
            fifo: SortedList::new(),
            track_fifo: true,
            settled: SortedList::new(),
            groups: Vec::new(),
            group_curves: Vec::new(),
            group_ids: FxHashMap::default(),
            density: DensityAccum::default(),
        }
    }
}

impl EngineIndex {
    /// An empty index maintaining exactly the structures `policy` reads —
    /// preemptive units skip FIFO-list upkeep.
    pub(crate) fn for_policy(policy: EvictionPolicy) -> Self {
        EngineIndex {
            track_fifo: policy == EvictionPolicy::Fifo,
            ..EngineIndex::default()
        }
    }

    pub(crate) fn clock(&self) -> SimTime {
        self.clock
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Number of pending curve breakpoints — the depth of the index's
    /// event queue, reported as an observability gauge.
    pub(crate) fn events_len(&self) -> usize {
        self.events_live
    }

    /// True if the heap entry `(t, id, slot)` is the slot's current pending
    /// event (lazy deletion: cancelled entries fail this check).
    fn event_entry_live(&self, t: SimTime, id: ObjectId, slot: u32) -> bool {
        matches!(self.event.get(slot), Some((fire, _)) if *fire == t) && *self.ids.get(slot) == id
    }

    /// True when every breakpoint at or before `now` has been processed.
    /// O(1) via the heap minimum. Conservative: a cancelled entry that has
    /// not yet surfaced can only make this report `false` (sending a
    /// read-only caller to the full scan), never `true`; `advance` pops
    /// stale minima, so mutating call sites always see the exact answer.
    pub(crate) fn events_processed_through(&self, now: SimTime) -> bool {
        match self.events.peek() {
            None => true,
            Some(&Reverse((t, _, _))) => t > now,
        }
    }

    /// True when a [`EventKind::Finalize`] is pending for the minute after
    /// `now`, i.e. some expired object still carries positive importance.
    pub(crate) fn finalize_pending(&self, now: SimTime) -> bool {
        let at = now + SimDuration::MINUTE;
        self.finalizes
            .iter_from((at, ObjectId::new(0)))
            .take_while(|&((t, _), _)| t == at)
            .next()
            .is_some()
    }

    /// Collects into `out` the id of every expired object (importance zero
    /// *or* positive at the expiry-minute boundary), in ascending id order
    /// — the order the naive full-scan sweep evicts in. Callers pass a
    /// reusable buffer so idle sweeps allocate nothing.
    pub(crate) fn expired_ids(&self, now: SimTime, out: &mut Vec<ObjectId>) {
        out.clear();
        out.extend(self.expired.iter().map(|((_, id), _)| id));
        let at = now + SimDuration::MINUTE;
        out.extend(
            self.finalizes
                .iter_from((at, ObjectId::new(0)))
                .take_while(|&((t, _), _)| t == at)
                .map(|((_, id), _)| id),
        );
        out.sort_unstable();
    }

    /// Rebuilds the whole index at `now` (post-deserialization path).
    /// Objects are inserted in ascending id order — the same order the
    /// id-keyed map this arena replaced iterated in — so group numbering
    /// and accumulator arithmetic match a freshly grown index.
    pub(crate) fn rebuild(&mut self, objects: &ObjectArena, now: SimTime, track_fifo: bool) {
        *self = EngineIndex {
            clock: self.clock.max(now),
            track_fifo,
            ..EngineIndex::default()
        };
        self.density.at = self.clock;
        for (slot, object) in objects.entries_by_id() {
            self.insert(slot, object);
        }
    }

    /// Processes every breakpoint due at or before `now` and advances the
    /// clock. `objects` must contain exactly the indexed objects. Each
    /// processed breakpoint is reported to `obs` as an `engine.breakpoint`
    /// event keyed by the breakpoint's own instant, so traces expose an
    /// object's full importance-curve lifecycle.
    pub(crate) fn advance(&mut self, objects: &ObjectArena, now: SimTime, obs: &Obs) {
        while let Some(&Reverse((t, id, slot))) = self.events.peek() {
            if !self.event_entry_live(t, id, slot) {
                // Cancelled under lazy deletion; discard on surfacing.
                self.events.pop();
                self.events_stale -= 1;
                continue;
            }
            if t > now {
                break;
            }
            self.density.integrate_to(t);
            self.clock = t;
            self.events.pop();
            self.events_live -= 1;
            let (_, kind) = self
                .event
                .take(slot)
                .expect("live event has a column entry");
            if kind == EventKind::Finalize {
                self.finalizes.remove(&(t, id));
            }
            self.unregister(slot, id);
            self.register(slot, objects.at(slot));
            obs.event(
                t,
                "engine.breakpoint",
                &[
                    ("id", id.raw()),
                    ("finalize", (kind == EventKind::Finalize) as u64),
                ],
            );
        }
        if now > self.clock {
            self.density.integrate_to(now);
            self.clock = now;
        }
    }

    /// Indexes a newly stored object (classified at the current clock).
    pub(crate) fn insert(&mut self, slot: u32, object: &StoredObject) {
        if self.track_fifo {
            self.fifo
                .insert((object.arrival(), object.id()), u64::from(slot));
        }
        self.register(slot, object);
    }

    /// Drops an object from the index entirely (eviction/removal). A no-op
    /// if the slot was never indexed (pre-rebuild state).
    pub(crate) fn remove(&mut self, slot: u32, id: ObjectId) {
        if *self.home.get(slot) == Home::Absent {
            return;
        }
        let arrival = *self.arrival.get(slot);
        self.unregister(slot, id);
        if self.track_fifo {
            self.fifo.remove(&(arrival, id));
        }
    }

    /// Re-indexes an object after its annotation changed in place.
    pub(crate) fn reannotate(&mut self, slot: u32, object: &StoredObject) {
        if *self.home.get(slot) != Home::Absent {
            self.unregister(slot, object.id());
            self.register(slot, object);
        }
    }

    /// Classifies `object` at the current clock and adds it to its home
    /// structure, the density accumulators and (if needed) the event queue.
    fn register(&mut self, slot: u32, object: &StoredObject) {
        let id = object.id();
        let ann = object.annotated_at();
        let arrival = object.arrival();
        let size_f = object.size().as_bytes() as f64;
        let age = self.clock.saturating_since(ann);
        let expired = object.is_expired(self.clock);
        let value = object.current_importance(self.clock).value();

        let (home, reg, event) = if expired && value == 0.0 {
            (Home::Expired, Registered::None, None)
        } else {
            let segment = object.curve().segment_at(age);
            let reg = registration(&segment.form);
            if expired {
                // Positive importance at the expiry minute: a zero-wane
                // step curve observed at exactly `age == expiry`. It keeps
                // its group position for this minute and finalizes into
                // the expired set at the next one.
                let fire = ann + segment.next.expect("step boundary has a next breakpoint");
                let group = self.group_of(object.curve());
                self.groups[group as usize].insert((ann, arrival, id), u64::from(slot));
                self.events.push(Reverse((fire, id, slot)));
                self.events_live += 1;
                self.finalizes.insert((fire, id), u64::from(slot));
                (Home::Group(group), reg, Some((fire, EventKind::Finalize)))
            } else if segment.next.is_none() && matches!(segment.form, SegmentForm::Constant(_)) {
                // Final constant segment of a never-expiring curve: its
                // importance is frozen, so order by the value itself.
                let bits = value.to_bits();
                self.settled.insert((bits, arrival, id), u64::from(slot));
                (Home::Settled(bits), reg, None)
            } else {
                let group = self.group_of(object.curve());
                self.groups[group as usize].insert((ann, arrival, id), u64::from(slot));
                let event = segment.next.map(|next| {
                    let fire = ann + next;
                    self.events.push(Reverse((fire, id, slot)));
                    self.events_live += 1;
                    (fire, EventKind::Segment)
                });
                (Home::Group(group), reg, event)
            }
        };
        if home == Home::Expired {
            self.expired.insert((arrival, id), u64::from(slot));
        }
        self.density.signed_update(&reg, size_f, ann, 1.0);
        self.ids.set(slot, id);
        self.ann.set(slot, ann);
        self.arrival.set(slot, arrival);
        self.size_f.set(slot, size_f);
        self.home.set(slot, home);
        self.reg.set(slot, reg);
        self.event.set(slot, event);
        self.len += 1;
    }

    /// Removes an object from its home structure, the density accumulators
    /// and the event queue, using the state captured at registration.
    fn unregister(&mut self, slot: u32, id: ObjectId) {
        let ann = *self.ann.get(slot);
        let arrival = *self.arrival.get(slot);
        match *self.home.get(slot) {
            Home::Absent => panic!("unregister unindexed slot"),
            Home::Group(group) => {
                self.groups[group as usize].remove(&(ann, arrival, id));
            }
            Home::Settled(bits) => {
                self.settled.remove(&(bits, arrival, id));
            }
            Home::Expired => {
                self.expired.remove(&(arrival, id));
            }
        }
        self.home.set(slot, Home::Absent);
        if let Some((fire, kind)) = self.event.take(slot) {
            // Lazy deletion: the heap entry stays buried until it surfaces
            // (or the heap is compacted); clearing the column kills it.
            self.events_live -= 1;
            self.events_stale += 1;
            if kind == EventKind::Finalize {
                self.finalizes.remove(&(fire, id));
            }
            self.maybe_compact_events();
        }
        let reg = self.reg.take(slot);
        self.density
            .signed_update(&reg, *self.size_f.get(slot), ann, -1.0);
        self.len -= 1;
    }

    /// Rebuilds the event heap without its cancelled entries once they
    /// outnumber the live ones — O(live) with the stale majority dropped,
    /// so amortized O(1) per cancellation.
    fn maybe_compact_events(&mut self) {
        if self.events_stale > self.events_live && self.events.len() >= 64 {
            let mut entries = std::mem::take(&mut self.events).into_vec();
            let (event, ids) = (&self.event, &self.ids);
            entries.retain(|&Reverse((t, id, slot))| {
                matches!(event.get(slot), Some((fire, _)) if *fire == t) && *ids.get(slot) == id
            });
            self.events = BinaryHeap::from(entries);
            self.events_stale = 0;
        }
    }

    fn group_of(&mut self, curve: &ImportanceCurve) -> u32 {
        let groups = &mut self.groups;
        let group_curves = &mut self.group_curves;
        *self
            .group_ids
            .entry(ShapeKey::of(curve))
            .or_insert_with(|| {
                groups.push(SortedList::new());
                group_curves.push(curve.clone());
                (groups.len() - 1) as u32
            })
    }

    /// The weighted importance sum `Σ size·L(now)` (`now >= clock`).
    pub(crate) fn weighted_importance(&self, now: SimTime) -> f64 {
        self.density.value_at(now)
    }

    /// Number of candidate streams for preemption planning: the expired
    /// set, the settled set and every shape group (possibly empty — the
    /// merge skips empty streams by getting no first entry from them).
    pub(crate) fn stream_count(&self) -> usize {
        2 + self.groups.len()
    }

    /// The head of stream `sid` in eviction order, as `(key, expired,
    /// slot, resume)`. The exact [`EvictionKey`] (and expiry status) is
    /// computed from the stream's own sort key plus the group's
    /// representative curve — candidate objects are never dereferenced, so
    /// a plan touches object memory only for its actual victims' sizes.
    pub(crate) fn stream_head(
        &self,
        sid: usize,
        now: SimTime,
    ) -> Option<(EvictionKey, bool, u32, usize)> {
        let start = match sid {
            0 => self.expired.start(),
            1 => self.settled.start(),
            g => self.groups[g - 2].start(),
        };
        self.stream_next_head(sid, start, now)
    }

    /// [`stream_head`](EngineIndex::stream_head) continued from cursor
    /// `pos`. Cursors stay valid while the index is not mutated — plan
    /// merges keep `(sid, resume)` in their heap instead of boxed
    /// iterators.
    pub(crate) fn stream_next_head(
        &self,
        sid: usize,
        pos: usize,
        now: SimTime,
    ) -> Option<(EvictionKey, bool, u32, usize)> {
        match sid {
            0 => {
                // Expired home: importance already waned to zero (and stays
                // there — curves are non-increasing), expiry is in the past.
                let ((arrival, id), payload, resume) = self.expired.next_live_kv(pos)?;
                let key = EvictionKey {
                    importance: Importance::ZERO,
                    never_expires: false,
                    remaining: 0,
                    arrival,
                    id,
                };
                Some((key, true, payload as u32, resume))
            }
            1 => {
                // Settled home: frozen positive importance on a final
                // constant segment of a curve that never reaches zero.
                let ((bits, arrival, id), payload, resume) = self.settled.next_live_kv(pos)?;
                let key = EvictionKey {
                    importance: Importance::new_clamped(f64::from_bits(bits)),
                    never_expires: true,
                    remaining: 0,
                    arrival,
                    id,
                };
                Some((key, false, payload as u32, resume))
            }
            g => {
                let ((ann, arrival, id), payload, resume) = self.groups[g - 2].next_live_kv(pos)?;
                let curve = &self.group_curves[g - 2];
                let age = now.saturating_since(ann);
                let (never_expires, remaining, expired) = match curve.expiry() {
                    Some(e) => (false, e.saturating_sub(age).as_minutes(), age >= e),
                    None => (true, 0, false),
                };
                let key = EvictionKey {
                    importance: curve.importance_at(age),
                    never_expires,
                    remaining,
                    arrival,
                    id,
                };
                Some((key, expired, payload as u32, resume))
            }
        }
    }

    /// The FIFO eviction order, `(arrival, id)` ascending, yielding slots.
    pub(crate) fn fifo_order(&self) -> impl Iterator<Item = u32> + '_ {
        self.fifo.iter().map(|(_, payload)| payload as u32)
    }
}

/// How a segment form contributes to the density accumulators.
fn registration(form: &SegmentForm) -> Registered {
    match form {
        SegmentForm::Constant(c) if *c == 0.0 => Registered::None,
        SegmentForm::Constant(_) | SegmentForm::Linear { .. } => Registered::Linear(form.clone()),
        SegmentForm::Exp {
            start,
            peak,
            half_life,
        } => Registered::Exp {
            start: *start,
            peak: *peak,
            half_life: *half_life,
        },
    }
}
