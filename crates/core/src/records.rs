//! Outcome records: evictions, rejections, admission previews, unit stats.

use serde::{Deserialize, Serialize};
use sim_core::{ByteSize, SimDuration, SimTime};

use crate::{Importance, ObjectClass, ObjectId};

/// Why an object left the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum EvictionReason {
    /// Preempted by an incoming object of higher current importance (or by
    /// FIFO pressure under [`EvictionPolicy::Fifo`]).
    ///
    /// [`EvictionPolicy::Fifo`]: crate::EvictionPolicy::Fifo
    Preempted,
    /// Reclaimed by an explicit expired-object sweep.
    Expired,
    /// Removed by an explicit [`StorageUnit::remove`] call.
    ///
    /// [`StorageUnit::remove`]: crate::StorageUnit::remove
    Removed,
}

/// A record of one object leaving the store.
///
/// The paper's Figures 3, 9 and 10 are built from exactly this data: the
/// *lifetime achieved* ("measured when objects are evicted", §5.1.1) and
/// the *importance at reclamation* (§5.2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvictionRecord {
    /// The evicted object.
    pub id: ObjectId,
    /// Its class tag.
    pub class: ObjectClass,
    /// Its size.
    pub size: ByteSize,
    /// When it entered the store.
    pub arrival: SimTime,
    /// When it left.
    pub evicted_at: SimTime,
    /// Its current importance at the moment of eviction.
    pub importance_at_eviction: Importance,
    /// The expiry its annotation requested (`None` = never expires).
    pub requested_expiry: Option<SimDuration>,
    /// Why it left.
    pub reason: EvictionReason,
}

impl EvictionRecord {
    /// The lifetime the object actually achieved: eviction time minus
    /// arrival time.
    pub fn lifetime_achieved(&self) -> SimDuration {
        self.evicted_at.saturating_since(self.arrival)
    }
}

/// A record of a store request the unit turned down.
///
/// Figure 4 ("requests turned down because of full storage") counts these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectionRecord {
    /// The rejected object.
    pub id: ObjectId,
    /// Its class tag.
    pub class: ObjectClass,
    /// Its size.
    pub size: ByteSize,
    /// When the request was made.
    pub at: SimTime,
    /// The importance the object would have entered with.
    pub incoming_importance: Importance,
    /// Lowest current importance among the objects that blocked it, if the
    /// unit held any non-preemptible objects.
    pub blocking: Option<Importance>,
}

/// The result of a successful store.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreOutcome {
    /// The stored object's id.
    pub id: ObjectId,
    /// Objects preempted to make room, in eviction order.
    pub evicted: Vec<EvictionRecord>,
    /// The highest current importance among preempted objects — the §5.3
    /// placement score. `None` when the object fit without preempting
    /// anything (equivalent to a score of zero for placement purposes).
    pub highest_preempted: Option<Importance>,
}

impl StoreOutcome {
    /// The §5.3 placement score: the highest preempted importance, where
    /// fitting into free space scores zero.
    pub fn placement_score(&self) -> Importance {
        self.highest_preempted.unwrap_or(Importance::ZERO)
    }
}

/// A non-mutating admission preview, used by distributed placement to score
/// candidate units before committing (§5.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Admission {
    /// Fits into free space (plus possibly expired/zero-importance bytes);
    /// the highest preempted importance would be zero.
    Fits {
        /// Highest importance among the (zero or more) objects that would
        /// be preempted; zero when no preemption is needed. Kept separate
        /// from [`Admission::Preempting`] because the paper treats a
        /// highest-preempted importance of exactly zero as "can be directly
        /// stored in this unit".
        victims: usize,
    },
    /// Admission requires preempting live objects of positive importance.
    Preempting {
        /// The §5.3 score: highest current importance among the victims.
        highest: Importance,
        /// Number of objects that would be evicted.
        victims: usize,
        /// Bytes those victims free.
        freed: ByteSize,
    },
    /// The unit is full for this object: preempting everything eligible
    /// still leaves too little room.
    Full {
        /// Lowest current importance among non-preemptible objects, if any.
        blocking: Option<Importance>,
    },
    /// The object exceeds the unit's total capacity.
    TooLarge,
}

impl Admission {
    /// True if the object would be admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Fits { .. } | Admission::Preempting { .. })
    }

    /// The §5.3 placement score, or `None` when the object would be
    /// rejected. Lower is better; zero means direct storage.
    pub fn placement_score(&self) -> Option<Importance> {
        match self {
            Admission::Fits { .. } => Some(Importance::ZERO),
            Admission::Preempting { highest, .. } => Some(*highest),
            Admission::Full { .. } | Admission::TooLarge => None,
        }
    }
}

/// Lifetime counters for one [`StorageUnit`](crate::StorageUnit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[non_exhaustive]
pub struct UnitStats {
    /// Store requests attempted.
    pub stores_attempted: u64,
    /// Store requests accepted.
    pub stores_accepted: u64,
    /// Store requests rejected because the unit was full for the object.
    pub rejections_full: u64,
    /// Store requests rejected because the object exceeded capacity.
    pub rejections_too_large: u64,
    /// Objects evicted by preemption.
    pub evictions_preempted: u64,
    /// Objects reclaimed by expired-object sweeps.
    pub evictions_expired: u64,
    /// Objects explicitly removed.
    pub removals: u64,
    /// Total bytes accepted over the unit's lifetime.
    pub bytes_accepted: u64,
    /// Total bytes evicted over the unit's lifetime.
    pub bytes_evicted: u64,
}

impl UnitStats {
    /// Total rejected store requests.
    pub fn rejections(&self) -> u64 {
        self.rejections_full + self.rejections_too_large
    }

    /// Fraction of attempted stores that were accepted, or 1.0 when no
    /// store was ever attempted.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.stores_attempted == 0 {
            1.0
        } else {
            self.stores_accepted as f64 / self.stores_attempted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_achieved_is_eviction_minus_arrival() {
        let rec = EvictionRecord {
            id: ObjectId::new(1),
            class: ObjectClass::GENERIC,
            size: ByteSize::from_mib(1),
            arrival: SimTime::from_days(10),
            evicted_at: SimTime::from_days(42),
            importance_at_eviction: Importance::ZERO,
            requested_expiry: Some(SimDuration::from_days(30)),
            reason: EvictionReason::Preempted,
        };
        assert_eq!(rec.lifetime_achieved(), SimDuration::from_days(32));
    }

    #[test]
    fn admission_scores() {
        assert_eq!(
            Admission::Fits { victims: 0 }.placement_score(),
            Some(Importance::ZERO)
        );
        let p = Admission::Preempting {
            highest: Importance::new(0.4).unwrap(),
            victims: 2,
            freed: ByteSize::from_mib(10),
        };
        assert_eq!(p.placement_score(), Some(Importance::new(0.4).unwrap()));
        assert!(p.is_admitted());
        assert_eq!(Admission::Full { blocking: None }.placement_score(), None);
        assert!(!Admission::TooLarge.is_admitted());
    }

    #[test]
    fn stats_ratios() {
        let mut s = UnitStats::default();
        assert_eq!(s.acceptance_ratio(), 1.0);
        s.stores_attempted = 10;
        s.stores_accepted = 7;
        s.rejections_full = 2;
        s.rejections_too_large = 1;
        assert_eq!(s.rejections(), 3);
        assert!((s.acceptance_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn store_outcome_score_defaults_to_zero() {
        let o = StoreOutcome {
            id: ObjectId::new(1),
            evicted: vec![],
            highest_preempted: None,
        };
        assert_eq!(o.placement_score(), Importance::ZERO);
    }
}
