//! The scalar importance metric.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::ImportanceError;

/// A scalar importance value in `[0, 1]`.
///
/// Importance is the comparison metric of the whole system (§3 of the
/// paper): an object whose *current* importance is higher may preempt an
/// object of strictly lower current importance. Importance `1.0` objects are
/// not preemptible; importance `0.0` objects may be freely replaced.
///
/// The type guarantees its value is a finite float in `[0, 1]`, which makes
/// it totally ordered ([`Ord`]) and hashable despite wrapping an `f64`.
///
/// # Examples
///
/// ```
/// use temporal_importance::Importance;
///
/// let half = Importance::new(0.5)?;
/// assert!(half > Importance::ZERO);
/// assert!(half < Importance::FULL);
/// assert_eq!(half.value(), 0.5);
/// # Ok::<(), temporal_importance::ImportanceError>(())
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Importance(f64);

impl Importance {
    /// The lowest importance: freely replaceable by any object.
    pub const ZERO: Importance = Importance(0.0);

    /// The highest importance: never preemptible.
    pub const FULL: Importance = Importance(1.0);

    /// Creates an importance value.
    ///
    /// # Errors
    ///
    /// Returns [`ImportanceError`] if `value` is NaN, infinite, or outside
    /// `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ImportanceError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Importance(value))
        } else {
            Err(ImportanceError { value })
        }
    }

    /// Creates an importance value, clamping finite inputs into `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn new_clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "importance cannot be NaN");
        Importance(value.clamp(0.0, 1.0))
    }

    /// The wrapped value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// True if this is exactly zero (freely replaceable).
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// True if this is exactly one (never preemptible).
    pub fn is_full(self) -> bool {
        self.0 == 1.0
    }

    /// Multiplies two importance values (e.g. scaling a curve by its
    /// plateau level). The product of two values in `[0, 1]` stays in range.
    pub fn scale(self, factor: Importance) -> Importance {
        Importance(self.0 * factor.0)
    }
}

impl Eq for Importance {}

impl PartialOrd for Importance {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Importance {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite, so total_cmp agrees with the
        // mathematical order.
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for Importance {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl TryFrom<f64> for Importance {
    type Error = ImportanceError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Importance::new(value)
    }
}

impl From<Importance> for f64 {
    fn from(i: Importance) -> f64 {
        i.0
    }
}

impl fmt::Display for Importance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_unit_interval_only() {
        assert!(Importance::new(0.0).is_ok());
        assert!(Importance::new(1.0).is_ok());
        assert!(Importance::new(0.5).is_ok());
        assert!(Importance::new(-0.01).is_err());
        assert!(Importance::new(1.01).is_err());
        assert!(Importance::new(f64::NAN).is_err());
        assert!(Importance::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamped_constructor() {
        assert_eq!(Importance::new_clamped(-3.0), Importance::ZERO);
        assert_eq!(Importance::new_clamped(7.0), Importance::FULL);
        assert_eq!(Importance::new_clamped(0.25).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamped_rejects_nan() {
        let _ = Importance::new_clamped(f64::NAN);
    }

    #[test]
    fn total_order() {
        let mut xs = vec![
            Importance::FULL,
            Importance::ZERO,
            Importance::new(0.3).unwrap(),
        ];
        xs.sort();
        assert_eq!(
            xs,
            vec![
                Importance::ZERO,
                Importance::new(0.3).unwrap(),
                Importance::FULL
            ]
        );
    }

    #[test]
    fn predicates_and_scale() {
        assert!(Importance::ZERO.is_zero());
        assert!(Importance::FULL.is_full());
        let half = Importance::new(0.5).unwrap();
        assert!(!half.is_zero() && !half.is_full());
        assert_eq!(half.scale(half).value(), 0.25);
        assert_eq!(half.scale(Importance::FULL), half);
        assert_eq!(half.scale(Importance::ZERO), Importance::ZERO);
    }

    #[test]
    fn display_and_error_message() {
        assert_eq!(Importance::new(0.8369).unwrap().to_string(), "0.8369");
        let err = Importance::new(2.0).unwrap_err();
        assert!(err.to_string().contains("2"));
    }
}
