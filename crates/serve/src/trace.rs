//! Request-scoped trace context for the serving pipeline.
//!
//! Every request enqueued into a [`Tempimpd`](crate::Tempimpd) is
//! stamped with a [`RequestId`] and wall-clock stage timestamps —
//! **enqueue** (client, before the channel send), **dequeue** (worker,
//! when the job is drained into a batch), **apply** (worker, right
//! before the engine call) and **reply** (worker, right after) — all
//! read from one service-wide monotonic origin so they compare across
//! threads. From the stamps the worker derives the two halves of every
//! request's latency:
//!
//! * **queue wait** = apply − enqueue: channel transit, time parked in
//!   the ingest queue, and head-of-line wait behind earlier jobs of the
//!   same batch. This is the honest number — a request drained early
//!   into a large batch still waits for its turn inside the batch.
//! * **service** = reply − apply: the engine call itself.
//!
//! Both are recorded per verb into worker-local log₂ histograms (the
//! source of the per-shard quantiles in `health` answers) and into the
//! shared [`Observer`](sim_core::observe::Observer) seam under the
//! static [`VerbKind::queue_wait_metric`]/[`VerbKind::service_metric`]
//! names. Requests whose total latency crosses the worker's slow
//! threshold additionally emit an integer-only `serve.slow` trace event.
//!
//! This module is the one place in the crate that mentions the
//! `obs-off` feature: under it, every type here collapses to a unit
//! struct and every method to an empty inline body, so the serve hot
//! path carries no atomic traffic, no `Instant` reads, and no extra
//! bytes per job. (Serve trace events carry wall-clock durations and so
//! must never feed a byte-stable artifact; the `TraceSink` ignores
//! them by construction only for spans, so keep `serve.slow` out of
//! golden traces — the golden workload never drives the serve layer.)

use temporal_importance::protocol::{RequestId, Response, VerbLatency};

#[cfg(not(feature = "obs-off"))]
use obs::Histogram;
#[cfg(not(feature = "obs-off"))]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;
#[cfg(not(feature = "obs-off"))]
use temporal_importance::protocol::VerbKind;

/// The four stage timestamps of one served request, in nanoseconds
/// since the service's trace origin, plus its [`RequestId`].
///
/// Returned by [`Pending::wait_traced`](crate::Pending::wait_traced)
/// when the service was built with tracing compiled in (`None` under
/// `obs-off`). All stamps come from one monotonic clock, so the stages
/// are non-decreasing: `enqueued ≤ dequeued ≤ applied ≤ replied`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTrace {
    /// The request's service-unique id.
    pub id: RequestId,
    /// When the client stamped the request, before the channel send.
    pub enqueued_ns: u64,
    /// When the worker drained the request into a batch.
    pub dequeued_ns: u64,
    /// When the worker began applying the request to the engine.
    pub applied_ns: u64,
    /// When the worker finished the engine call and sent the reply.
    pub replied_ns: u64,
}

impl RequestTrace {
    /// Nanoseconds from client enqueue to batch apply: channel transit,
    /// queue residence, and head-of-line wait within the batch.
    pub fn queue_wait_ns(&self) -> u64 {
        self.applied_ns.saturating_sub(self.enqueued_ns)
    }

    /// Nanoseconds the engine call itself took.
    pub fn service_ns(&self) -> u64 {
        self.replied_ns.saturating_sub(self.applied_ns)
    }

    /// Nanoseconds from client enqueue to reply — the request's full
    /// in-service latency (excluding only reply-channel transit back).
    pub fn total_ns(&self) -> u64 {
        self.replied_ns.saturating_sub(self.enqueued_ns)
    }
}

/// The reply envelope a worker sends back: the response plus, when
/// tracing is compiled in, the request's completed stage stamps.
#[derive(Debug)]
pub(crate) struct Reply {
    pub(crate) response: Response,
    #[cfg(not(feature = "obs-off"))]
    pub(crate) trace: RequestTrace,
}

impl Reply {
    /// Splits the envelope for `wait_traced`.
    pub(crate) fn into_parts(self) -> (Response, Option<RequestTrace>) {
        #[cfg(not(feature = "obs-off"))]
        {
            (self.response, Some(self.trace))
        }
        #[cfg(feature = "obs-off")]
        {
            (self.response, None)
        }
    }
}

/// Service-wide shared telemetry: the trace-clock origin, the request-id
/// allocator, and per-shard ingest-queue counters. One per service,
/// shared by every client and worker through an `Arc`.
///
/// Queue-depth accounting conserves by construction: a client increments
/// its shard's depth *before* the channel send and undoes the increment
/// if the send fails, the worker decrements once per drained job —
/// enqueues − dequeues is exactly the number of jobs sitting in the
/// channel, and a drained service always returns to zero.
#[derive(Debug, Default)]
pub(crate) struct Telemetry {
    #[cfg(not(feature = "obs-off"))]
    origin: Option<Instant>,
    #[cfg(not(feature = "obs-off"))]
    next_id: AtomicU64,
    #[cfg(not(feature = "obs-off"))]
    shards: Vec<ShardCounters>,
}

#[cfg(not(feature = "obs-off"))]
#[derive(Debug, Default)]
struct ShardCounters {
    depth: AtomicU64,
    rejected: AtomicU64,
}

impl Telemetry {
    /// Telemetry for a `shards`-wide service, with the trace origin
    /// anchored at the call.
    pub(crate) fn new(shards: u32) -> Telemetry {
        #[cfg(not(feature = "obs-off"))]
        {
            Telemetry {
                origin: Some(Instant::now()),
                next_id: AtomicU64::new(0),
                shards: (0..shards).map(|_| ShardCounters::default()).collect(),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = shards;
            Telemetry {}
        }
    }

    #[cfg(not(feature = "obs-off"))]
    fn now_ns(&self) -> u64 {
        self.origin
            .map(|origin| u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    }

    /// Allocates an id and stamps the enqueue stage. Clients call this
    /// once per job, right before the channel send.
    pub(crate) fn stamp(&self) -> Stamps {
        #[cfg(not(feature = "obs-off"))]
        {
            Stamps {
                id: self.next_id.fetch_add(1, Ordering::Relaxed),
                enqueued_ns: self.now_ns(),
                dequeued_ns: 0,
            }
        }
        #[cfg(feature = "obs-off")]
        {
            Stamps {}
        }
    }

    /// Counts a job into `shard`'s queue depth (call before the send).
    pub(crate) fn enqueued(&self, shard: u32) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[shard as usize]
            .depth
            .fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = shard;
    }

    /// Undoes [`enqueued`](Telemetry::enqueued) after a failed send, so
    /// depth never counts a job that is not in the channel.
    pub(crate) fn enqueue_failed(&self, shard: u32) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[shard as usize]
            .depth
            .fetch_sub(1, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = shard;
    }

    /// Counts one fast-fail backpressure rejection against `shard`.
    pub(crate) fn rejected(&self, shard: u32) {
        #[cfg(not(feature = "obs-off"))]
        self.shards[shard as usize]
            .rejected
            .fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs-off")]
        let _ = shard;
    }

    /// Removes `n` drained jobs from `shard`'s depth and returns the
    /// remaining depth (what the worker reports as its gauge).
    pub(crate) fn drained(&self, shard: u32, n: u64) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.shards[shard as usize]
                .depth
                .fetch_sub(n, Ordering::Relaxed)
                .saturating_sub(n)
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = (shard, n);
            0
        }
    }

    /// `shard`'s current ingest-queue depth (0 under `obs-off`).
    pub(crate) fn depth(&self, shard: u32) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.shards[shard as usize].depth.load(Ordering::Relaxed)
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = shard;
            0
        }
    }

    /// `shard`'s lifetime backpressure-rejection count (0 under
    /// `obs-off`).
    pub(crate) fn rejected_count(&self, shard: u32) -> u64 {
        #[cfg(not(feature = "obs-off"))]
        {
            self.shards[shard as usize].rejected.load(Ordering::Relaxed)
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = shard;
            0
        }
    }
}

/// The in-flight stamps riding inside a queued `Job`: id, enqueue time
/// and dequeue time. The apply/reply stages are measured by the worker
/// at completion and never stored in the job.
#[derive(Debug, Default)]
pub(crate) struct Stamps {
    #[cfg(not(feature = "obs-off"))]
    id: u64,
    #[cfg(not(feature = "obs-off"))]
    enqueued_ns: u64,
    #[cfg(not(feature = "obs-off"))]
    dequeued_ns: u64,
}

impl Stamps {
    /// Records the dequeue stage from a worker's [`Mark`]. Workers take
    /// one mark per drained batch — every job in the batch left the
    /// channel in the same drain loop.
    pub(crate) fn dequeued(&mut self, mark: Mark) {
        #[cfg(not(feature = "obs-off"))]
        {
            self.dequeued_ns = mark.0;
        }
        #[cfg(feature = "obs-off")]
        let _ = mark;
    }
}

/// A captured instant on the service trace clock, used to hand a
/// timestamp from [`WorkerTracing::mark`] into [`Stamps::dequeued`] and
/// [`WorkerTracing::complete`] without re-reading the clock.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Mark(#[cfg(not(feature = "obs-off"))] u64);

/// Per-worker tracing state: the clock handle, the per-verb queue-wait
/// and service-time histograms behind this shard's `health` answers,
/// and the slow-request threshold.
#[derive(Debug)]
pub(crate) struct WorkerTracing {
    #[cfg(not(feature = "obs-off"))]
    origin: Option<Instant>,
    #[cfg(not(feature = "obs-off"))]
    slow_ns: u64,
    #[cfg(not(feature = "obs-off"))]
    latencies: [(Histogram, Histogram); VerbKind::ALL.len()],
}

impl WorkerTracing {
    /// Worker tracing sharing `telemetry`'s clock origin, flagging
    /// requests slower than `slow_ns` total (u64::MAX disables the slow
    /// log).
    pub(crate) fn new(telemetry: &Telemetry, slow_ns: u64) -> WorkerTracing {
        #[cfg(not(feature = "obs-off"))]
        {
            WorkerTracing {
                origin: telemetry.origin,
                slow_ns,
                latencies: std::array::from_fn(|_| (Histogram::new(), Histogram::new())),
            }
        }
        #[cfg(feature = "obs-off")]
        {
            let _ = (telemetry, slow_ns);
            WorkerTracing {}
        }
    }

    /// Reads the trace clock once; feed the mark to [`Stamps::dequeued`]
    /// (batch granularity) or [`WorkerTracing::complete`] (per job).
    pub(crate) fn mark(&self) -> Mark {
        #[cfg(not(feature = "obs-off"))]
        {
            Mark(
                self.origin
                    .map(|origin| u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX))
                    .unwrap_or(0),
            )
        }
        #[cfg(feature = "obs-off")]
        {
            Mark()
        }
    }

    /// Completes one request: derives queue-wait and service time from
    /// the stamps and the `applied` mark, records both into the local
    /// per-verb histograms and through the observer seam, emits the
    /// `serve.slow` event when the total crosses the threshold, and
    /// wraps the response and its finished trace into the reply
    /// envelope.
    // One argument per pipeline ingredient (seam, clock, identity,
    // stamps, outcome); bundling them into a struct would be built and
    // destructured at the single call site for no clarity gain.
    #[allow(unused_variables, clippy::too_many_arguments)]
    pub(crate) fn complete(
        &mut self,
        obs: &sim_core::Obs,
        now: sim_core::SimTime,
        shard: u32,
        verb: temporal_importance::protocol::VerbKind,
        stamps: Stamps,
        applied: Mark,
        response: Response,
    ) -> Reply {
        #[cfg(not(feature = "obs-off"))]
        {
            let replied_ns = self
                .origin
                .map(|origin| u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            let trace = RequestTrace {
                id: RequestId::new(stamps.id),
                enqueued_ns: stamps.enqueued_ns,
                dequeued_ns: stamps.dequeued_ns,
                applied_ns: applied.0,
                replied_ns,
            };
            let queue_wait = trace.queue_wait_ns();
            let service = trace.service_ns();
            let slot = &mut self.latencies[verb.code() as usize];
            slot.0.record(queue_wait);
            slot.1.record(service);
            obs.record(verb.queue_wait_metric(), queue_wait);
            obs.record(verb.service_metric(), service);
            if trace.total_ns() >= self.slow_ns {
                obs.event(
                    now,
                    "serve.slow",
                    &[
                        ("shard", u64::from(shard)),
                        ("verb", verb.code()),
                        ("id", trace.id.raw()),
                        ("queue_ns", queue_wait),
                        ("service_ns", service),
                        ("total_ns", trace.total_ns()),
                    ],
                );
            }
            Reply { response, trace }
        }
        #[cfg(feature = "obs-off")]
        {
            Reply { response }
        }
    }

    /// The per-verb latency quantiles this worker has accumulated, for
    /// verbs with at least one sample — what the worker splices into
    /// its `health` answers. Empty under `obs-off`.
    pub(crate) fn verb_latencies(&self) -> Vec<VerbLatency> {
        #[cfg(not(feature = "obs-off"))]
        {
            VerbKind::ALL
                .iter()
                .filter_map(|&verb| {
                    let (queue_wait, service) = &self.latencies[verb.code() as usize];
                    (queue_wait.count() > 0).then(|| VerbLatency {
                        verb,
                        samples: queue_wait.count(),
                        queue_wait_p50_ns: queue_wait.quantile(0.50),
                        queue_wait_p99_ns: queue_wait.quantile(0.99),
                        service_p50_ns: service.quantile(0.50),
                        service_p99_ns: service.quantile(0.99),
                    })
                })
                .collect()
        }
        #[cfg(feature = "obs-off")]
        {
            Vec::new()
        }
    }
}

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sim_core::observe::Observer;
    use sim_core::{Obs, SimTime};
    use std::sync::{Arc, Mutex};
    use temporal_importance::protocol::VerbKind;

    type CaughtEvent = (String, Vec<(String, u64)>);

    #[derive(Debug, Default)]
    struct EventCatcher {
        events: Mutex<Vec<CaughtEvent>>,
        records: Mutex<Vec<(String, u64)>>,
    }

    impl Observer for EventCatcher {
        fn counter(&self, _: &'static str, _: u64) {}
        fn gauge(&self, _: &'static str, _: u64) {}
        fn record(&self, name: &'static str, value: u64) {
            self.records.lock().unwrap().push((name.into(), value));
        }
        fn event(&self, _: SimTime, kind: &'static str, fields: &[(&'static str, u64)]) {
            self.events.lock().unwrap().push((
                kind.into(),
                fields.iter().map(|&(k, v)| (k.into(), v)).collect(),
            ));
        }
    }

    fn complete_one(tracing: &mut WorkerTracing, telemetry: &Telemetry, obs: &Obs) -> RequestTrace {
        let mut stamps = telemetry.stamp();
        stamps.dequeued(tracing.mark());
        let applied = tracing.mark();
        let reply = tracing.complete(
            obs,
            SimTime::ZERO,
            0,
            VerbKind::Get,
            stamps,
            applied,
            Response::Get(Ok(None)),
        );
        let (_, trace) = reply.into_parts();
        trace.expect("tracing is compiled in")
    }

    #[test]
    fn stages_are_monotone_and_ids_unique() {
        let telemetry = Telemetry::new(1);
        let mut tracing = WorkerTracing::new(&telemetry, u64::MAX);
        let obs = Obs::none();
        let a = complete_one(&mut tracing, &telemetry, &obs);
        let b = complete_one(&mut tracing, &telemetry, &obs);
        for trace in [a, b] {
            assert!(trace.enqueued_ns <= trace.dequeued_ns);
            assert!(trace.dequeued_ns <= trace.applied_ns);
            assert!(trace.applied_ns <= trace.replied_ns);
            assert_eq!(trace.queue_wait_ns() + trace.service_ns(), trace.total_ns());
        }
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn completions_feed_local_histograms_and_the_seam() {
        let catcher = Arc::new(EventCatcher::default());
        let obs = Obs::attached(catcher.clone());
        let telemetry = Telemetry::new(1);
        let mut tracing = WorkerTracing::new(&telemetry, u64::MAX);
        complete_one(&mut tracing, &telemetry, &obs);
        complete_one(&mut tracing, &telemetry, &obs);

        let latencies = tracing.verb_latencies();
        assert_eq!(latencies.len(), 1, "only the get verb has samples");
        assert_eq!(latencies[0].verb, VerbKind::Get);
        assert_eq!(latencies[0].samples, 2);
        assert!(latencies[0].queue_wait_p50_ns <= latencies[0].queue_wait_p99_ns);
        assert!(latencies[0].service_p50_ns <= latencies[0].service_p99_ns);

        let records = catcher.records.lock().unwrap();
        let count = |name: &str| records.iter().filter(|(n, _)| n == name).count();
        assert_eq!(count("serve.queue_wait.get"), 2);
        assert_eq!(count("serve.service.get"), 2);
        // No slow events at a disabled threshold.
        assert!(catcher.events.lock().unwrap().is_empty());
    }

    #[test]
    fn slow_requests_emit_integer_only_events() {
        let catcher = Arc::new(EventCatcher::default());
        let obs = Obs::attached(catcher.clone());
        let telemetry = Telemetry::new(1);
        // Threshold zero: every request is "slow".
        let mut tracing = WorkerTracing::new(&telemetry, 0);
        let trace = complete_one(&mut tracing, &telemetry, &obs);

        let events = catcher.events.lock().unwrap();
        assert_eq!(events.len(), 1);
        let (kind, fields) = &events[0];
        assert_eq!(kind, "serve.slow");
        let field = |name: &str| {
            fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|&(_, v)| v)
                .unwrap()
        };
        assert_eq!(field("verb"), VerbKind::Get.code());
        assert_eq!(field("id"), trace.id.raw());
        assert_eq!(field("queue_ns") + field("service_ns"), field("total_ns"));
    }

    proptest! {
        /// Queue-depth accounting conserves: after any interleaving of
        /// successful enqueues, failed enqueues (undone), and drains,
        /// the depth equals enqueues − drains, never goes negative, and
        /// returns to zero once everything drained.
        #[test]
        fn queue_depth_accounting_conserves(ops in proptest::collection::vec(0u8..3, 1..200)) {
            let telemetry = Telemetry::new(2);
            let mut model = [0u64; 2];
            for (i, op) in ops.iter().enumerate() {
                let shard = (i % 2) as u32;
                match op {
                    0 => {
                        telemetry.enqueued(shard);
                        model[shard as usize] += 1;
                    }
                    1 => {
                        // A failed send is undone immediately.
                        telemetry.enqueued(shard);
                        telemetry.enqueue_failed(shard);
                    }
                    _ => {
                        let drain = model[shard as usize].min(2);
                        if drain > 0 {
                            let after = telemetry.drained(shard, drain);
                            model[shard as usize] -= drain;
                            prop_assert_eq!(after, model[shard as usize]);
                        }
                    }
                }
                prop_assert_eq!(telemetry.depth(shard), model[shard as usize]);
            }
            for shard in 0..2u32 {
                let depth = model[shard as usize];
                if depth > 0 {
                    prop_assert_eq!(telemetry.drained(shard, depth), 0);
                }
                prop_assert_eq!(telemetry.depth(shard), 0, "drained queues return to zero");
            }
        }
    }
}
