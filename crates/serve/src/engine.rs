//! The per-shard execution engine: one [`StorageUnit`] advanced along a
//! shard-local monotonic clock, with periodic expiry sweeps.
//!
//! This is deliberately the *only* code path that applies protocol
//! requests to a shard, shared verbatim between the live worker threads
//! of [`Tempimpd`](crate::Tempimpd) and the single-threaded
//! [`replay`] used by the differential determinism tests: a shard's final
//! state is a pure function of its effective request log, by construction.

use sim_core::{ByteSize, Obs, ShardClock, SimDuration, SimTime};
use temporal_importance::protocol::{Request, Response, StoreApi};
use temporal_importance::{EvictionPolicy, StorageUnit};

/// One shard's engine: storage unit + monotonic clock + sweep cadence.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration, SimTime};
/// use tempimpd::ShardEngine;
/// use temporal_importance::protocol::StoreApi;
/// use temporal_importance::{EvictionPolicy, ImportanceCurve, ObjectId};
///
/// let mut shard = ShardEngine::new(
///     ByteSize::from_gib(1),
///     EvictionPolicy::Preemptive,
///     SimDuration::DAY,
/// );
/// let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_days(7));
/// shard
///     .put(ObjectId::new(1), ByteSize::from_mib(10), curve, SimTime::ZERO)
///     .unwrap();
/// assert_eq!(shard.unit().len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardEngine {
    unit: StorageUnit,
    clock: ShardClock,
    last_sweep: SimTime,
    sweep_every: SimDuration,
}

impl ShardEngine {
    /// An empty shard with the given capacity, policy, and expiry-sweep
    /// cadence. Eviction/rejection record keeping is off — a serving shard
    /// reports through aggregate stats and the observer, not per-event
    /// record vectors that would grow without bound.
    pub fn new(capacity: ByteSize, policy: EvictionPolicy, sweep_every: SimDuration) -> Self {
        ShardEngine::with_observer(capacity, policy, sweep_every, Obs::none())
    }

    /// [`ShardEngine::new`] with an explicit observer on the unit.
    /// Observation never feeds back into state, so observed and silent
    /// shards stay byte-identical — replay always uses a silent one.
    pub fn with_observer(
        capacity: ByteSize,
        policy: EvictionPolicy,
        sweep_every: SimDuration,
        obs: Obs,
    ) -> Self {
        let unit = StorageUnit::builder(capacity)
            .policy(policy)
            .recording(false)
            .observer(obs)
            .build();
        ShardEngine {
            unit,
            clock: ShardClock::new(),
            last_sweep: SimTime::ZERO,
            sweep_every,
        }
    }

    /// Folds a request timestamp into the shard clock without applying
    /// anything — workers call this once per drained batch with the
    /// latest timestamp in the batch, so every request in the batch is
    /// processed at one effective instant and breakpoint/expiry work is
    /// paid once per batch instead of once per request.
    pub fn observe(&mut self, at: SimTime) -> SimTime {
        self.clock.observe(at)
    }

    /// The latest effective instant this shard has processed.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shard's storage unit.
    pub fn unit(&self) -> &StorageUnit {
        &self.unit
    }

    /// Consumes the engine, returning the final unit state.
    pub fn into_unit(self) -> StorageUnit {
        self.unit
    }
}

impl StoreApi for ShardEngine {
    /// Applies one request at `max(at, clock)` — time never moves
    /// backwards on a shard — running an expired-object sweep first
    /// whenever at least the sweep cadence has elapsed since the last one.
    ///
    /// Both the sweep decision and the effective timestamp depend only on
    /// the sequence of `(at, request)` pairs this engine has seen, which
    /// is what makes single-threaded replay of a recorded log reproduce a
    /// live shard exactly.
    fn call(&mut self, at: SimTime, request: Request) -> Response {
        let now = self.clock.observe(at);
        if now.saturating_since(self.last_sweep) >= self.sweep_every {
            self.unit.sweep_expired(now);
            self.last_sweep = now;
        }
        self.unit.call(now, request)
    }
}

/// Replays an effective request log single-threaded into a fresh shard,
/// returning the resulting engine for state comparison.
///
/// The log is what a [`Tempimpd`](crate::Tempimpd) worker records when
/// built with request logging: timestamps are the *effective* (batch-
/// coalesced, monotone) instants, in the shard's processing order. Because
/// this drives the same [`ShardEngine`] code path as the live worker, a
/// replayed shard must end up byte-identical to the live one — the
/// differential tests serialize both and compare.
pub fn replay(
    capacity: ByteSize,
    policy: EvictionPolicy,
    sweep_every: SimDuration,
    log: &[(SimTime, Request)],
) -> ShardEngine {
    let mut engine = ShardEngine::new(capacity, policy, sweep_every);
    for (at, request) in log {
        engine.call(*at, request.clone());
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_importance::{Importance, ImportanceCurve, ObjectId};

    fn ephemeral_curve() -> ImportanceCurve {
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(1))
    }

    #[test]
    fn sweeps_run_on_cadence_and_free_expired_bytes() {
        let mut shard = ShardEngine::new(
            ByteSize::from_mib(100),
            EvictionPolicy::Preemptive,
            SimDuration::DAY,
        );
        shard
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(10),
                ephemeral_curve(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(shard.unit().used(), ByteSize::from_mib(10));

        // Two days later any request triggers the sweep first; the expired
        // object is reclaimed even though nothing touched it directly.
        let later = SimTime::from_days(2);
        let stats = shard.store_stats(later).unwrap();
        assert_eq!(stats.used, ByteSize::ZERO);
        assert_eq!(stats.unit.evictions_expired, 1);
        assert_eq!(shard.now(), later);
    }

    #[test]
    fn stragglers_do_not_rewind_the_shard() {
        let mut shard = ShardEngine::new(
            ByteSize::from_mib(100),
            EvictionPolicy::Preemptive,
            SimDuration::DAY,
        );
        shard
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(10),
                ephemeral_curve(),
                SimTime::from_days(3),
            )
            .unwrap();
        // A straggler stamped at day 1 is processed at the shard's day-3
        // clock: the object it queries is still fresh relative to day 3.
        let info = shard
            .get_info(ObjectId::new(1), SimTime::from_days(1))
            .unwrap()
            .expect("stored");
        assert!(!info.expired);
        assert_eq!(shard.now(), SimTime::from_days(3));
    }

    #[test]
    fn replay_of_a_recorded_log_reproduces_state() {
        let capacity = ByteSize::from_mib(64);
        let sweep = SimDuration::HOUR;
        let mut live = ShardEngine::new(capacity, EvictionPolicy::Preemptive, sweep);
        let mut log = Vec::new();
        for i in 0..200u64 {
            let at = SimTime::from_hours(i / 2);
            let request = Request::Put {
                id: ObjectId::new(i),
                bytes: ByteSize::from_mib(1 + i % 7),
                curve: ImportanceCurve::two_step(
                    Importance::FULL,
                    SimDuration::from_hours(6 + i % 30),
                    SimDuration::from_hours(12),
                ),
                class: temporal_importance::ObjectClass::GENERIC,
            };
            let effective = live.now().max(at);
            log.push((effective, request.clone()));
            live.call(at, request);
        }
        let replayed = replay(capacity, EvictionPolicy::Preemptive, sweep, &log);
        let live_json = serde_json::to_string(live.unit()).unwrap();
        let replay_json = serde_json::to_string(replayed.unit()).unwrap();
        assert_eq!(live_json, replay_json);
        assert_eq!(live.unit().stats(), replayed.unit().stats());
    }
}
