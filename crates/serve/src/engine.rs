//! The per-shard execution engine: one [`StorageUnit`] advanced along a
//! shard-local monotonic clock, with periodic expiry sweeps.
//!
//! This is deliberately the *only* code path that applies protocol
//! requests to a shard, shared verbatim between the live worker threads
//! of [`Tempimpd`](crate::Tempimpd) and the single-threaded
//! [`replay`] used by the differential determinism tests: a shard's final
//! state is a pure function of its effective request log, by construction.

use std::path::Path;

use sim_core::{ByteSize, Obs, ShardClock, SimDuration, SimTime};
use tempimp_durable::{DiskInfo, DurableConfig, DurableError, DurableUnit};
use temporal_importance::protocol::{Request, Response, StoreApi};
use temporal_importance::{EvictionPolicy, StorageUnit};

/// What actually holds a shard's objects: the in-memory engine, or the
/// same engine wrapped in a segment journal. The dispatch below is the
/// *entire* difference between a volatile and a durable shard — clock,
/// sweep cadence, batching, and replay semantics are shared.
#[derive(Debug)]
enum Backend {
    /// Volatile: state dies with the process. Boxed (like the durable
    /// variant) so the enum stays pointer-sized — a shard engine moves
    /// across threads at spawn and shutdown.
    Memory(Box<StorageUnit>),
    /// Journaled: every mutation lands in an append-only segment log
    /// and state survives process death.
    Durable(Box<DurableUnit>),
}

/// One shard's engine: storage unit + monotonic clock + sweep cadence.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration, SimTime};
/// use tempimpd::ShardEngine;
/// use temporal_importance::protocol::StoreApi;
/// use temporal_importance::{EvictionPolicy, ImportanceCurve, ObjectId};
///
/// let mut shard = ShardEngine::new(
///     ByteSize::from_gib(1),
///     EvictionPolicy::Preemptive,
///     SimDuration::DAY,
/// );
/// let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_days(7));
/// shard
///     .put(ObjectId::new(1), ByteSize::from_mib(10), curve, SimTime::ZERO)
///     .unwrap();
/// assert_eq!(shard.unit().len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardEngine {
    backend: Backend,
    clock: ShardClock,
    last_sweep: SimTime,
    sweep_every: SimDuration,
}

impl ShardEngine {
    /// An empty shard with the given capacity, policy, and expiry-sweep
    /// cadence. Eviction/rejection record keeping is off — a serving shard
    /// reports through aggregate stats and the observer, not per-event
    /// record vectors that would grow without bound.
    pub fn new(capacity: ByteSize, policy: EvictionPolicy, sweep_every: SimDuration) -> Self {
        ShardEngine::with_observer(capacity, policy, sweep_every, Obs::none())
    }

    /// [`ShardEngine::new`] with an explicit observer on the unit.
    /// Observation never feeds back into state, so observed and silent
    /// shards stay byte-identical — replay always uses a silent one.
    pub fn with_observer(
        capacity: ByteSize,
        policy: EvictionPolicy,
        sweep_every: SimDuration,
        obs: Obs,
    ) -> Self {
        let unit = StorageUnit::builder(capacity)
            .policy(policy)
            .recording(false)
            .observer(obs)
            .build();
        ShardEngine {
            backend: Backend::Memory(Box::new(unit)),
            clock: ShardClock::new(),
            last_sweep: SimTime::ZERO,
            sweep_every,
        }
    }

    /// A durable shard backed by a segment log at `dir`: opening
    /// replays any existing segments, so the engine resumes exactly
    /// where the previous process's last persisted mutation left it —
    /// including the shard clock and sweep cadence clock, which seed
    /// from the log's recovered high-water marks.
    ///
    /// # Errors
    ///
    /// [`DurableError`] on filesystem trouble, segment corruption, or a
    /// recovered resident set this capacity/policy cannot hold.
    pub fn durable(
        dir: impl AsRef<Path>,
        capacity: ByteSize,
        policy: EvictionPolicy,
        sweep_every: SimDuration,
        config: DurableConfig,
        obs: Obs,
    ) -> Result<Self, DurableError> {
        let unit = DurableUnit::with_observer(dir, capacity, policy, config, obs)?;
        let mut clock = ShardClock::new();
        clock.observe(unit.clock());
        let last_sweep = unit.last_sweep();
        Ok(ShardEngine {
            backend: Backend::Durable(Box::new(unit)),
            clock,
            last_sweep,
            sweep_every,
        })
    }

    /// Folds a request timestamp into the shard clock without applying
    /// anything — workers call this once per drained batch with the
    /// latest timestamp in the batch, so every request in the batch is
    /// processed at one effective instant and breakpoint/expiry work is
    /// paid once per batch instead of once per request.
    pub fn observe(&mut self, at: SimTime) -> SimTime {
        self.clock.observe(at)
    }

    /// The latest effective instant this shard has processed.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shard's storage unit.
    pub fn unit(&self) -> &StorageUnit {
        match &self.backend {
            Backend::Memory(unit) => unit,
            Backend::Durable(durable) => durable.unit(),
        }
    }

    /// Disk occupancy of the shard's segment log; `None` for a
    /// volatile shard.
    pub fn disk_info(&self) -> Option<DiskInfo> {
        match &self.backend {
            Backend::Memory(_) => None,
            Backend::Durable(durable) => Some(durable.disk_info()),
        }
    }

    /// Consumes the engine, returning the final unit state. A durable
    /// backend syncs its log to stable storage first.
    ///
    /// # Panics
    ///
    /// Panics if the final sync of a durable backend fails — the shard
    /// cannot truthfully report clean state it could not persist. On a
    /// worker thread the panic surfaces through the service's shutdown
    /// report.
    pub fn into_unit(self) -> StorageUnit {
        match self.backend {
            Backend::Memory(unit) => *unit,
            Backend::Durable(durable) => durable
                .close()
                .expect("final sync of the shard's segment log failed"),
        }
    }
}

impl StoreApi for ShardEngine {
    /// Applies one request at `max(at, clock)` — time never moves
    /// backwards on a shard — running an expired-object sweep first
    /// whenever at least the sweep cadence has elapsed since the last one.
    ///
    /// Both the sweep decision and the effective timestamp depend only on
    /// the sequence of `(at, request)` pairs this engine has seen, which
    /// is what makes single-threaded replay of a recorded log reproduce a
    /// live shard exactly.
    fn call(&mut self, at: SimTime, request: Request) -> Response {
        let now = self.clock.observe(at);
        if now.saturating_since(self.last_sweep) >= self.sweep_every {
            match &mut self.backend {
                Backend::Memory(unit) => {
                    unit.sweep_expired(now);
                }
                Backend::Durable(durable) => {
                    // A journaling failure here cannot be answered to
                    // any one client (the sweep belongs to no request);
                    // panic and let the shutdown report surface it.
                    durable
                        .sweep_expired(now)
                        .expect("journaling a shard sweep failed");
                }
            }
            self.last_sweep = now;
        }
        match &mut self.backend {
            Backend::Memory(unit) => unit.call(now, request),
            Backend::Durable(durable) => durable.call(now, request),
        }
    }
}

/// Replays an effective request log single-threaded into a fresh shard,
/// returning the resulting engine for state comparison.
///
/// The log is what a [`Tempimpd`](crate::Tempimpd) worker records when
/// built with request logging: timestamps are the *effective* (batch-
/// coalesced, monotone) instants, in the shard's processing order. Because
/// this drives the same [`ShardEngine`] code path as the live worker, a
/// replayed shard must end up byte-identical to the live one — the
/// differential tests serialize both and compare.
pub fn replay(
    capacity: ByteSize,
    policy: EvictionPolicy,
    sweep_every: SimDuration,
    log: &[(SimTime, Request)],
) -> ShardEngine {
    let mut engine = ShardEngine::new(capacity, policy, sweep_every);
    for (at, request) in log {
        engine.call(*at, request.clone());
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_importance::{Importance, ImportanceCurve, ObjectId};

    fn ephemeral_curve() -> ImportanceCurve {
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(1))
    }

    #[test]
    fn sweeps_run_on_cadence_and_free_expired_bytes() {
        let mut shard = ShardEngine::new(
            ByteSize::from_mib(100),
            EvictionPolicy::Preemptive,
            SimDuration::DAY,
        );
        shard
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(10),
                ephemeral_curve(),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(shard.unit().used(), ByteSize::from_mib(10));

        // Two days later any request triggers the sweep first; the expired
        // object is reclaimed even though nothing touched it directly.
        let later = SimTime::from_days(2);
        let stats = shard.store_stats(later).unwrap();
        assert_eq!(stats.used, ByteSize::ZERO);
        assert_eq!(stats.unit.evictions_expired, 1);
        assert_eq!(shard.now(), later);
    }

    #[test]
    fn stragglers_do_not_rewind_the_shard() {
        let mut shard = ShardEngine::new(
            ByteSize::from_mib(100),
            EvictionPolicy::Preemptive,
            SimDuration::DAY,
        );
        shard
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(10),
                ephemeral_curve(),
                SimTime::from_days(3),
            )
            .unwrap();
        // A straggler stamped at day 1 is processed at the shard's day-3
        // clock: the object it queries is still fresh relative to day 3.
        let info = shard
            .get_info(ObjectId::new(1), SimTime::from_days(1))
            .unwrap()
            .expect("stored");
        assert!(!info.expired);
        assert_eq!(shard.now(), SimTime::from_days(3));
    }

    #[test]
    fn replay_of_a_recorded_log_reproduces_state() {
        let capacity = ByteSize::from_mib(64);
        let sweep = SimDuration::HOUR;
        let mut live = ShardEngine::new(capacity, EvictionPolicy::Preemptive, sweep);
        let mut log = Vec::new();
        for i in 0..200u64 {
            let at = SimTime::from_hours(i / 2);
            let request = Request::Put {
                id: ObjectId::new(i),
                bytes: ByteSize::from_mib(1 + i % 7),
                curve: ImportanceCurve::two_step(
                    Importance::FULL,
                    SimDuration::from_hours(6 + i % 30),
                    SimDuration::from_hours(12),
                ),
                class: temporal_importance::ObjectClass::GENERIC,
            };
            let effective = live.now().max(at);
            log.push((effective, request.clone()));
            live.call(at, request);
        }
        let replayed = replay(capacity, EvictionPolicy::Preemptive, sweep, &log);
        let live_json = serde_json::to_string(live.unit()).unwrap();
        let replay_json = serde_json::to_string(replayed.unit()).unwrap();
        assert_eq!(live_json, replay_json);
        assert_eq!(live.unit().stats(), replayed.unit().stats());
    }
}
