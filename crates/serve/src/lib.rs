//! `tempimpd` — a sharded, concurrently-writable serving layer over the
//! temporal-importance reclamation engine.
//!
//! The core engine ([`temporal_importance::StorageUnit`]) is
//! single-threaded by design: its indexes advance along one monotonic
//! clock. This crate scales it out the way a log-structured store shards
//! an LSM tree: objects hash to one of N **shards**
//! ([`ShardRouter`]), each shard is an independent `StorageUnit` owned
//! exclusively by a worker thread, and requests travel to the owner over
//! a bounded MPSC ingest queue as the typed
//! [`Request`]/[`Response`] messages of the
//! [`StoreApi`](temporal_importance::protocol::StoreApi) protocol. No
//! locks, no shared state: concurrency comes from ownership transfer,
//! and each shard remains exactly as deterministic as the engine it
//! wraps.
//!
//! Three properties the design guarantees:
//!
//! * **Batch-amortized time.** A worker drains its queue in batches and
//!   processes the whole batch at the batch's latest timestamp, so
//!   breakpoint advancement and expiry sweeps are paid per batch, not
//!   per request ([`ShardEngine`]).
//! * **Replayable shards.** Each shard's final state is a pure function
//!   of its effective request log; a log recorded live and replayed
//!   single-threaded through [`replay`] yields a byte-identical unit —
//!   the differential determinism tests hold the service to this.
//! * **Typed backpressure.** A full ingest queue surfaces as
//!   [`Error::QueueFull`](temporal_importance::Error::QueueFull) on the
//!   non-blocking path, a dead worker as
//!   [`Error::Disconnected`](temporal_importance::Error::Disconnected);
//!   blocking clients simply wait.
//!
//! # Quickstart
//!
//! ```
//! use sim_core::{ByteSize, SimDuration, SimTime};
//! use tempimpd::Tempimpd;
//! use temporal_importance::protocol::StoreApi;
//! use temporal_importance::{ImportanceCurve, ObjectId};
//!
//! let service = Tempimpd::builder()
//!     .shards(4)
//!     .shard_capacity(ByteSize::from_mib(512))
//!     .spawn();
//!
//! let mut client = service.client();
//! let curve = ImportanceCurve::two_step(
//!     temporal_importance::Importance::FULL,
//!     SimDuration::from_days(15),
//!     SimDuration::from_days(15),
//! );
//! client
//!     .put(ObjectId::new(7), ByteSize::from_mib(64), curve, SimTime::ZERO)?;
//! assert!(client
//!     .get_info(ObjectId::new(7), SimTime::ZERO)?
//!     .is_some());
//!
//! drop(client); // workers exit once every client is gone
//! let reports = service.shutdown().expect_clean();
//! assert_eq!(reports.iter().map(|r| r.unit.len()).sum::<usize>(), 1);
//! # Ok::<(), temporal_importance::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod engine;
mod service;
mod trace;

pub use engine::{replay, ShardEngine};
pub use service::{
    Pending, ServeClient, ShardFailure, ShardReport, ShutdownReport, Tempimpd, TempimpdBuilder,
};
pub use trace::RequestTrace;

// Durable-shard vocabulary a serve consumer configures or reads, so
// wiring a persistent service doesn't force a direct dependency on the
// storage-backend crate.
pub use tempimp_durable::{DiskInfo, DurableConfig};

// The routing function lives in the protocol module so `besteffs` can use
// the identical mapping; re-exported here because it is part of this
// crate's vocabulary, as are the health-verb answer types every serve
// consumer reads.
pub use temporal_importance::protocol::{
    HealthSnapshot, RequestId, ShardHealth, ShardRouter, VerbKind, VerbLatency,
};
