//! The sharded serving front-end: worker threads, ingest queues, clients.
//!
//! A [`Tempimpd`] owns N worker threads, each running a private
//! [`ShardEngine`] fed by a bounded MPSC ingest queue. [`ServeClient`]s
//! hash every keyed request to its shard ([`ShardRouter`]), enqueue it
//! with the client's timestamp, and block on a per-request reply channel;
//! whole-store queries (`Density`, `Stats`, `Health`) fan out to every
//! shard and aggregate in shard order. Workers drain requests in batches
//! and process each batch at a single effective instant — see
//! [`ShardEngine`] for why that keeps shards deterministically replayable.
//!
//! Every job additionally carries request-scoped trace stamps (see
//! [`crate::trace`]): clients stamp an id and the enqueue instant, the
//! worker stamps dequeue/apply/reply and derives per-verb queue-wait and
//! service-time histograms from them — both per shard (surfaced through
//! the `health` verb) and in aggregate through the `Observer` seam. The
//! stamps ride outside the serialized [`Request`], so effective request
//! logs and replay stay byte-identical with or without tracing.

use std::fmt;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sim_core::{ByteSize, Obs, SimDuration, SimTime};
use tempimp_durable::DurableConfig;
use temporal_importance::protocol::{
    DensityInfo, HealthSnapshot, Request, Response, ShardRouter, StoreApi, StoreStats, VerbKind,
};
use temporal_importance::{Error, EvictionPolicy, StorageUnit};

use crate::engine::ShardEngine;
use crate::trace::{Reply, Stamps, Telemetry, WorkerTracing};
use crate::RequestTrace;

/// One queued request: the client's timestamp, the request, its trace
/// stamps, and where to send the answer.
struct Job {
    at: SimTime,
    request: Request,
    stamps: Stamps,
    reply: Sender<Reply>,
}

/// The round-trip span name blocking dispatch records for each verb.
fn span_name(verb: VerbKind) -> &'static str {
    match verb {
        VerbKind::Put => "span.serve.put",
        VerbKind::Get => "span.serve.get",
        VerbKind::Advise => "span.serve.advise",
        VerbKind::Density => "span.serve.density",
        VerbKind::Stats => "span.serve.stats",
        VerbKind::Health => "span.serve.health",
    }
}

/// Configures and spawns a [`Tempimpd`]. Obtained from
/// [`Tempimpd::builder`].
#[derive(Debug, Clone)]
#[must_use = "call .spawn() to start the service"]
pub struct TempimpdBuilder {
    shards: u32,
    shard_capacity: ByteSize,
    policy: EvictionPolicy,
    queue_depth: usize,
    batch_max: usize,
    sweep_every: SimDuration,
    record_log: bool,
    slow_threshold: Option<Duration>,
    obs: Option<Obs>,
    durable: Option<PathBuf>,
    durable_config: DurableConfig,
}

impl TempimpdBuilder {
    /// Number of independent shards / worker threads (default 8).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Capacity of each shard's storage unit (default 1 GiB). Total
    /// service capacity is `shards × shard_capacity`.
    pub fn shard_capacity(mut self, capacity: ByteSize) -> Self {
        self.shard_capacity = capacity;
        self
    }

    /// Eviction policy for every shard (default
    /// [`EvictionPolicy::Preemptive`], the paper's mechanism).
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bound of each shard's ingest queue (default 1024). A full queue is
    /// the backpressure signal: blocking sends wait, non-blocking sends
    /// fail with [`Error::QueueFull`].
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Most requests a worker drains into one batch (default 64). Every
    /// request in a batch is processed at the batch's latest timestamp,
    /// so larger batches amortize more breakpoint/expiry work.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// How much simulated time may elapse on a shard between
    /// expired-object sweeps (default one day).
    pub fn sweep_every(mut self, cadence: SimDuration) -> Self {
        self.sweep_every = cadence;
        self
    }

    /// When true, every worker records its effective request log and
    /// returns it in its [`ShardReport`] — the input to
    /// [`replay`](crate::replay) in the differential determinism tests
    /// (default off; the log grows with every request).
    pub fn record_log(mut self, record: bool) -> Self {
        self.record_log = record;
        self
    }

    /// Requests whose total in-service wall time (enqueue → reply)
    /// reaches `threshold` emit an integer-only `serve.slow` trace event
    /// naming the shard, verb, request id, and the queue-wait/service
    /// split (default: no slow log). A no-op under `obs-off`.
    pub fn slow_threshold(mut self, threshold: Duration) -> Self {
        self.slow_threshold = Some(threshold);
        self
    }

    /// Attaches an explicit observer shared by all shards and clients.
    /// Without this, the service observes into [`Obs::global`].
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Backs every shard with an append-only segment log under
    /// `dir/shard-{n}` (default: volatile, in-memory shards). Spawning
    /// replays any logs already there, so a service restarted on the
    /// same directory — with the same shard count, capacity, and policy
    /// — resumes from the last persisted mutation of each shard.
    /// Reclamation on a durable shard additionally compacts the log:
    /// segments whose objects the importance engine has let die are
    /// rewritten down to their survivors and the disk space reclaimed.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable = Some(dir.into());
        self
    }

    /// Segment-log tuning (segment size, compaction trigger) for
    /// [`durable`](TempimpdBuilder::durable) shards; ignored for
    /// volatile ones.
    pub fn durable_config(mut self, config: DurableConfig) -> Self {
        self.durable_config = config;
        self
    }

    /// Spawns the worker threads and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `queue_depth`, or `batch_max` is zero, or if
    /// the OS refuses to spawn a thread.
    pub fn spawn(self) -> Tempimpd {
        assert!(self.shards > 0, "a service needs at least one shard");
        assert!(self.queue_depth > 0, "ingest queues need capacity");
        assert!(self.batch_max > 0, "batches must hold at least one request");
        let obs = self.obs.unwrap_or_else(Obs::global);
        let telemetry = Arc::new(Telemetry::new(self.shards));
        let slow_ns = self
            .slow_threshold
            .map(|threshold| u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(u64::MAX);
        let mut ingests = Vec::with_capacity(self.shards as usize);
        let mut workers = Vec::with_capacity(self.shards as usize);
        for shard in 0..self.shards {
            let (tx, rx) = mpsc::sync_channel(self.queue_depth);
            let worker = Worker {
                shard,
                capacity: self.shard_capacity,
                policy: self.policy,
                sweep_every: self.sweep_every,
                batch_max: self.batch_max,
                record_log: self.record_log,
                slow_ns,
                telemetry: telemetry.clone(),
                obs: obs.clone(),
                durable: self
                    .durable
                    .as_ref()
                    .map(|dir| dir.join(format!("shard-{shard}"))),
                durable_config: self.durable_config,
            };
            let handle = std::thread::Builder::new()
                .name(format!("tempimpd-shard-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            ingests.push(tx);
            workers.push(handle);
        }
        Tempimpd {
            router: ShardRouter::new(self.shards),
            ingests,
            workers,
            telemetry,
            obs,
            shard_capacity: self.shard_capacity,
            policy: self.policy,
            sweep_every: self.sweep_every,
        }
    }
}

/// What one shard worker hands back when the service shuts down.
#[derive(Debug)]
#[non_exhaustive]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// The shard's final storage unit state.
    pub unit: StorageUnit,
    /// The shard's final effective instant.
    pub final_now: SimTime,
    /// Requests the shard processed.
    pub requests: u64,
    /// Batches the shard drained.
    pub batches: u64,
    /// The effective request log, if the service was built with
    /// [`record_log`](TempimpdBuilder::record_log). Feeding this to
    /// [`replay`](crate::replay) must reproduce `unit` exactly.
    pub log: Vec<(SimTime, Request)>,
    /// Final disk occupancy of the shard's segment log; `None` for a
    /// volatile shard.
    pub disk: Option<tempimp_durable::DiskInfo>,
}

/// Per-shard worker state; `run` consumes it on the shard thread.
struct Worker {
    shard: u32,
    capacity: ByteSize,
    policy: EvictionPolicy,
    sweep_every: SimDuration,
    batch_max: usize,
    record_log: bool,
    slow_ns: u64,
    telemetry: Arc<Telemetry>,
    obs: Obs,
    /// This shard's segment-log directory, when the service is durable.
    durable: Option<PathBuf>,
    durable_config: DurableConfig,
}

impl Worker {
    /// Splices this worker's live telemetry into the engine's inert
    /// `health` answer: the engine contributes clock/residents/occupancy
    /// (so replay sees identical side effects), the worker contributes
    /// everything only the serving layer knows.
    fn enrich_health(
        &self,
        response: &mut Response,
        tracing: &WorkerTracing,
        requests: u64,
        batches: u64,
    ) {
        if let Response::Health(Ok(snapshot)) = response {
            if let Some(health) = snapshot.shards.first_mut() {
                health.shard = self.shard;
                health.queue_depth = self.telemetry.depth(self.shard);
                health.requests = requests;
                health.batches = batches;
                health.rejected = self.telemetry.rejected_count(self.shard);
                health.latencies = tracing.verb_latencies();
            }
        }
    }

    fn run(self, ingest: Receiver<Job>) -> ShardReport {
        // An unopenable or corrupt segment log panics the worker thread;
        // the panic (with the underlying error) surfaces in the service's
        // [`ShutdownReport`] rather than silently serving an empty shard.
        let mut engine = match &self.durable {
            Some(dir) => ShardEngine::durable(
                dir,
                self.capacity,
                self.policy,
                self.sweep_every,
                self.durable_config,
                self.obs.clone(),
            )
            .unwrap_or_else(|error| {
                panic!(
                    "opening the segment log for shard {} at {} failed: {error}",
                    self.shard,
                    dir.display()
                )
            }),
            None => ShardEngine::with_observer(
                self.capacity,
                self.policy,
                self.sweep_every,
                self.obs.clone(),
            ),
        };
        let mut tracing = WorkerTracing::new(&self.telemetry, self.slow_ns);
        let mut log = Vec::new();
        let mut batch: Vec<Job> = Vec::with_capacity(self.batch_max);
        let mut requests = 0u64;
        let mut batches = 0u64;
        // Block for the first request of a batch, then drain greedily up
        // to batch_max. The whole batch is processed at its latest
        // timestamp: one clock advance, at most one sweep, then every
        // request applies at the same instant.
        while let Ok(first) = ingest.recv() {
            batch.push(first);
            while batch.len() < self.batch_max {
                match ingest.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
            let latest = batch
                .iter()
                .map(|job| job.at)
                .max()
                .expect("non-empty batch");
            let now = engine.observe(latest);
            let drained = batch.len() as u64;
            // One clock read covers the whole drain; the per-job apply
            // stamp below restores per-request resolution.
            let dequeued = tracing.mark();
            let depth = self.telemetry.drained(self.shard, drained);
            batches += 1;
            let mut span = self.obs.span("span.serve.shard_batch");
            span.sim_to(now);
            for mut job in batch.drain(..) {
                job.stamps.dequeued(dequeued);
                if self.record_log {
                    log.push((now, job.request.clone()));
                }
                let verb = VerbKind::of(&job.request);
                let applied = tracing.mark();
                let mut response = engine.call(now, job.request);
                requests += 1;
                if verb == VerbKind::Health {
                    self.enrich_health(&mut response, &tracing, requests, batches);
                }
                let reply = tracing.complete(
                    &self.obs, now, self.shard, verb, job.stamps, applied, response,
                );
                // A client that gave up on the reply is not an error.
                let _ = job.reply.send(reply);
            }
            drop(span);
            self.obs.counter("serve.requests", drained);
            self.obs.counter("serve.batches", 1);
            self.obs.record("serve.batch_fill", drained);
            self.obs.gauge("serve.queue_depth", depth);
            self.obs.event(
                now,
                "serve.batch",
                &[("shard", u64::from(self.shard)), ("drained", drained)],
            );
            self.obs.event(
                now,
                "serve.depth",
                &[("shard", u64::from(self.shard)), ("depth", depth)],
            );
        }
        let final_now = engine.now();
        let disk = engine.disk_info();
        ShardReport {
            shard: self.shard,
            unit: engine.into_unit(),
            final_now,
            requests,
            batches,
            log,
            disk,
        }
    }
}

/// A running sharded serving layer.
///
/// Hand out connections with [`client`](Tempimpd::client); when every
/// client has been dropped, [`shutdown`](Tempimpd::shutdown) joins the
/// workers and returns their final state.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration, SimTime};
/// use tempimpd::Tempimpd;
/// use temporal_importance::protocol::StoreApi;
/// use temporal_importance::{ImportanceCurve, ObjectId};
///
/// let service = Tempimpd::builder()
///     .shards(2)
///     .shard_capacity(ByteSize::from_mib(256))
///     .spawn();
/// let mut client = service.client();
///
/// let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_days(7));
/// client
///     .put(ObjectId::new(1), ByteSize::from_mib(10), curve, SimTime::ZERO)
///     .unwrap();
/// let stats = client.store_stats(SimTime::ZERO).unwrap();
/// assert_eq!(stats.objects, 1);
///
/// let health = client.health(SimTime::ZERO).unwrap();
/// assert_eq!(health.shards.len(), 2);
///
/// drop(client);
/// let reports = service.shutdown().expect_clean();
/// assert_eq!(reports.len(), 2);
/// ```
#[derive(Debug)]
pub struct Tempimpd {
    router: ShardRouter,
    ingests: Vec<SyncSender<Job>>,
    workers: Vec<JoinHandle<ShardReport>>,
    telemetry: Arc<Telemetry>,
    obs: Obs,
    shard_capacity: ByteSize,
    policy: EvictionPolicy,
    sweep_every: SimDuration,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("at", &self.at).finish()
    }
}

impl Tempimpd {
    /// Starts configuring a service; see [`TempimpdBuilder`].
    pub fn builder() -> TempimpdBuilder {
        TempimpdBuilder {
            shards: 8,
            shard_capacity: ByteSize::from_gib(1),
            policy: EvictionPolicy::Preemptive,
            queue_depth: 1024,
            batch_max: 64,
            sweep_every: SimDuration::DAY,
            record_log: false,
            slow_threshold: None,
            obs: None,
            durable: None,
            durable_config: DurableConfig::default(),
        }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.router.shards()
    }

    /// Each shard's capacity (replay needs it to rebuild identical units).
    pub fn shard_capacity(&self) -> ByteSize {
        self.shard_capacity
    }

    /// The shards' eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The shards' expiry-sweep cadence.
    pub fn sweep_every(&self) -> SimDuration {
        self.sweep_every
    }

    /// A new connection to the service. Clients are cheap to clone and
    /// `Send`, so load generators hand one to each thread.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            router: self.router,
            ingests: self.ingests.clone(),
            telemetry: self.telemetry.clone(),
            obs: self.obs.clone(),
        }
    }

    /// Stops the workers and returns a [`ShutdownReport`]: one
    /// [`ShardReport`] per surviving shard, in shard order, plus a
    /// [`ShardFailure`] for every worker that panicked.
    ///
    /// Workers exit when their ingest queue has no senders left, so every
    /// [`ServeClient`] must be dropped first — joining while clients are
    /// alive would wait forever.
    ///
    /// Every worker is joined even when an earlier one panicked — one
    /// poisoned shard must not discard the final state of the healthy
    /// ones (for a durable service, it must not skip their final log
    /// sync either). Callers that treat any failure as fatal use
    /// [`ShutdownReport::expect_clean`].
    pub fn shutdown(mut self) -> ShutdownReport {
        self.ingests.clear();
        let mut reports = Vec::with_capacity(self.workers.len());
        let mut failures = Vec::new();
        for (shard, worker) in self.workers.drain(..).enumerate() {
            match worker.join() {
                Ok(report) => reports.push(report),
                Err(panic) => failures.push(ShardFailure {
                    shard: shard as u32,
                    message: panic_message(panic.as_ref()),
                }),
            }
        }
        ShutdownReport { reports, failures }
    }
}

/// Best-effort text of a worker panic payload. `panic!` with a format
/// string yields a `String`, a bare literal a `&'static str`; anything
/// else (a custom `panic_any` payload) is reported opaquely.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = panic.downcast_ref::<&'static str>() {
        (*message).to_owned()
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message.clone()
    } else {
        "shard worker panicked with a non-string payload".to_owned()
    }
}

/// What [`Tempimpd::shutdown`] hands back: the final state of every
/// shard whose worker ran to completion, and what went wrong on the
/// ones that did not.
#[derive(Debug)]
#[non_exhaustive]
pub struct ShutdownReport {
    /// Reports from the workers that exited cleanly, in shard order.
    pub reports: Vec<ShardReport>,
    /// One entry per worker that panicked, in shard order.
    pub failures: Vec<ShardFailure>,
}

/// A shard worker that panicked instead of reporting final state.
#[derive(Debug)]
#[non_exhaustive]
pub struct ShardFailure {
    /// The shard index.
    pub shard: u32,
    /// The panic message, as well as it could be recovered.
    pub message: String,
}

impl ShutdownReport {
    /// True when every worker exited cleanly.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Unwraps the per-shard reports, panicking if any worker failed.
    ///
    /// # Panics
    ///
    /// Panics with every failed shard's message if the shutdown was not
    /// clean.
    pub fn expect_clean(self) -> Vec<ShardReport> {
        if !self.is_clean() {
            let detail: Vec<String> = self
                .failures
                .iter()
                .map(|failure| format!("shard {}: {}", failure.shard, failure.message))
                .collect();
            panic!(
                "{} shard worker(s) panicked — {}",
                self.failures.len(),
                detail.join("; ")
            );
        }
        self.reports
    }
}

/// A connection to a [`Tempimpd`]: implements [`StoreApi`] by enqueueing
/// requests to the owning shard and blocking on the reply.
///
/// Keyed verbs (`put`/`get`/`advise`) touch exactly one shard; `density`,
/// `stats`, and `health` fan out to all shards and aggregate in shard
/// order. The non-blocking [`try_call`](ServeClient::try_call) surfaces a
/// full ingest queue as [`Error::QueueFull`] instead of waiting.
#[derive(Debug, Clone)]
pub struct ServeClient {
    router: ShardRouter,
    ingests: Vec<SyncSender<Job>>,
    telemetry: Arc<Telemetry>,
    obs: Obs,
}

impl ServeClient {
    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.router.shards()
    }

    /// Like [`StoreApi::call`], but a full ingest queue fails fast with
    /// [`Error::QueueFull`] instead of blocking — the caller's
    /// backpressure signal.
    pub fn try_call(&self, now: SimTime, request: Request) -> Response {
        self.dispatch(now, request, false)
    }

    /// Routes `request` to its shard(s) and returns without waiting for
    /// the reply. The returned [`Pending`] is the claim ticket; redeem it
    /// with [`Pending::wait`] (or [`Pending::wait_traced`] to also get
    /// the request's stage timestamps).
    ///
    /// This is the pipelining primitive: a client that keeps a window of
    /// submissions in flight amortizes the thread wake-ups of the
    /// request channels over the whole window, where [`StoreApi::call`]
    /// pays a round trip per request. Replies still arrive in per-shard
    /// FIFO order, so per-shard effects of earlier submissions are
    /// visible to later ones regardless of when the replies are
    /// collected.
    ///
    /// Fails with [`Error::Disconnected`] if a target worker is gone.
    /// The blocking send waits while an ingest queue is full; use
    /// [`try_call`](ServeClient::try_call) for fail-fast backpressure.
    pub fn submit(&self, now: SimTime, request: Request) -> Result<Pending, Error> {
        self.submit_inner(now, request, true)
    }

    fn submit_inner(
        &self,
        now: SimTime,
        request: Request,
        blocking: bool,
    ) -> Result<Pending, Error> {
        let verb = VerbKind::of(&request);
        let replies = match &request {
            Request::Put { id, .. } | Request::Get { id } | Request::Advise { id, .. } => {
                let shard = self.router.route(*id);
                let (reply_tx, reply_rx) = mpsc::channel();
                let job = Job {
                    at: now,
                    request,
                    stamps: self.telemetry.stamp(),
                    reply: reply_tx,
                };
                self.enqueue(job, shard, blocking)?;
                Replies::One(reply_rx)
            }
            // Fan-out: every shard gets the request, each with its own
            // reply channel, kept in shard order so aggregation is
            // deterministic (float summation order never depends on
            // which worker answers first).
            Request::Density | Request::Stats | Request::Health => {
                let mut replies = Vec::with_capacity(self.ingests.len());
                for shard in 0..self.ingests.len() as u32 {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    let job = Job {
                        at: now,
                        request: request.clone(),
                        stamps: self.telemetry.stamp(),
                        reply: reply_tx,
                    };
                    self.enqueue(job, shard, blocking)?;
                    replies.push(reply_rx);
                }
                Replies::FanOut(replies)
            }
        };
        Ok(Pending { verb, replies })
    }

    /// Blocking calls span the full round trip under the verb's
    /// `span.serve.*` name; pipelined submissions carry their own stage
    /// stamps instead — redeem them with [`Pending::wait_traced`].
    fn dispatch(&self, now: SimTime, request: Request, blocking: bool) -> Response {
        let verb = VerbKind::of(&request);
        let mut span = self.obs.span(span_name(verb));
        span.sim_to(now);
        match self.submit_inner(now, request, blocking) {
            Ok(pending) => pending.wait(),
            Err(error) => verb.failed(error),
        }
    }

    /// Sends `job` to `shard`, keeping the queue-depth accounting
    /// conservative: the depth is incremented before the send and undone
    /// if the send fails, so it exactly counts jobs in the channel.
    fn enqueue(&self, job: Job, shard: u32, blocking: bool) -> Result<(), Error> {
        self.telemetry.enqueued(shard);
        let queue = &self.ingests[shard as usize];
        let result = if blocking {
            queue.send(job).map_err(|_| Error::Disconnected)
        } else {
            match queue.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(_)) => Err(Error::QueueFull { shard }),
                Err(TrySendError::Disconnected(_)) => Err(Error::Disconnected),
            }
        };
        if let Err(error) = &result {
            self.telemetry.enqueue_failed(shard);
            if matches!(error, Error::QueueFull { .. }) {
                self.telemetry.rejected(shard);
            }
        }
        result
    }
}

/// A submitted request whose reply has not been collected yet — the
/// other half of [`ServeClient::submit`].
///
/// Holds the per-request reply channel(s); [`wait`](Pending::wait)
/// collects the response. Dropping a `Pending` abandons the reply — the
/// worker still processes the request (it may already have), only the
/// answer is discarded.
pub struct Pending {
    verb: VerbKind,
    replies: Replies,
}

enum Replies {
    One(Receiver<Reply>),
    FanOut(Vec<Receiver<Reply>>),
}

impl fmt::Debug for Pending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let outstanding = match &self.replies {
            Replies::One(_) => 1,
            Replies::FanOut(replies) => replies.len(),
        };
        f.debug_struct("Pending")
            .field("verb", &self.verb)
            .field("outstanding", &outstanding)
            .finish()
    }
}

impl Pending {
    /// Blocks until the reply arrives (all shard replies, for a fan-out
    /// verb) and returns it. A worker that died before answering yields
    /// the verb's response variant carrying [`Error::Disconnected`].
    pub fn wait(self) -> Response {
        self.wait_traced().0
    }

    /// Like [`wait`](Pending::wait), but also returns the request's
    /// completed [`RequestTrace`] — the honest pipelined latency record:
    /// queue wait and service time measured by the worker, regardless of
    /// when the caller collected the reply.
    ///
    /// The trace is `None` under `obs-off` (tracing compiled out) or
    /// when the worker died before answering. Fan-out verbs return the
    /// slowest shard's trace: its reply instant is when the whole
    /// aggregate became available.
    pub fn wait_traced(self) -> (Response, Option<RequestTrace>) {
        let Pending { verb, replies } = self;
        match replies {
            Replies::One(reply_rx) => match reply_rx.recv() {
                Ok(reply) => reply.into_parts(),
                Err(_) => (verb.failed(Error::Disconnected), None),
            },
            Replies::FanOut(reply_rxs) => {
                let mut responses = Vec::with_capacity(reply_rxs.len());
                let mut slowest: Option<RequestTrace> = None;
                for reply_rx in reply_rxs {
                    match reply_rx.recv() {
                        Ok(reply) => {
                            let (response, trace) = reply.into_parts();
                            responses.push(response);
                            if let Some(trace) = trace {
                                if slowest.is_none_or(|s| trace.replied_ns > s.replied_ns) {
                                    slowest = Some(trace);
                                }
                            }
                        }
                        Err(_) => return (verb.failed(Error::Disconnected), None),
                    }
                }
                (aggregate(verb, responses), slowest)
            }
        }
    }
}

/// Folds per-shard answers to a whole-store query into one response.
fn aggregate(verb: VerbKind, responses: Vec<Response>) -> Response {
    match verb {
        VerbKind::Stats => {
            let mut total = StoreStats::default();
            for response in responses {
                match response {
                    Response::Stats(Ok(stats)) => total.absorb(&stats),
                    Response::Stats(Err(error)) => return Response::Stats(Err(error)),
                    other => panic!("protocol violation: Stats answered with {other:?}"),
                }
            }
            Response::Stats(Ok(total))
        }
        VerbKind::Density => {
            let mut weighted = 0.0f64;
            let mut capacity = ByteSize::ZERO;
            let mut used = ByteSize::ZERO;
            for response in responses {
                match response {
                    Response::Density(Ok(info)) => {
                        weighted += info.density * info.capacity.as_bytes() as f64;
                        capacity += info.capacity;
                        used += info.used;
                    }
                    Response::Density(Err(error)) => return Response::Density(Err(error)),
                    other => panic!("protocol violation: Density answered with {other:?}"),
                }
            }
            let density = if capacity.is_zero() {
                0.0
            } else {
                weighted / capacity.as_bytes() as f64
            };
            Response::Density(Ok(DensityInfo {
                density,
                capacity,
                used,
            }))
        }
        VerbKind::Health => {
            // Workers answer in shard order (the fan-out enqueued in
            // shard order and each reply channel is per-shard), so the
            // concatenated snapshot lists shards 0..N.
            let mut total = HealthSnapshot::default();
            for response in responses {
                match response {
                    Response::Health(Ok(snapshot)) => total.absorb(snapshot),
                    Response::Health(Err(error)) => return Response::Health(Err(error)),
                    other => panic!("protocol violation: Health answered with {other:?}"),
                }
            }
            Response::Health(Ok(total))
        }
        _ => unreachable!("only whole-store verbs aggregate"),
    }
}

impl StoreApi for ServeClient {
    fn call(&mut self, now: SimTime, request: Request) -> Response {
        self.dispatch(now, request, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_importance::{Importance, ImportanceCurve, ObjectId};

    fn week_curve() -> ImportanceCurve {
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(7))
    }

    fn small_service(shards: u32) -> Tempimpd {
        Tempimpd::builder()
            .shards(shards)
            .shard_capacity(ByteSize::from_mib(256))
            .record_log(true)
            .observer(Obs::none())
            .spawn()
    }

    #[test]
    fn serves_puts_gets_and_aggregate_queries() {
        let service = small_service(4);
        let mut client = service.client();
        for i in 0..100u64 {
            client
                .put(
                    ObjectId::new(i),
                    ByteSize::from_mib(1),
                    week_curve(),
                    SimTime::from_minutes(i),
                )
                .unwrap();
        }
        for i in 0..100u64 {
            let info = client
                .get_info(ObjectId::new(i), SimTime::from_minutes(100))
                .unwrap()
                .expect("object stored");
            assert_eq!(info.size, ByteSize::from_mib(1));
        }
        let advice = client
            .advise(
                ObjectId::new(1000),
                ByteSize::from_mib(1),
                Importance::FULL,
                SimTime::from_minutes(100),
            )
            .unwrap();
        assert!(advice.is_admitted());

        let stats = client.store_stats(SimTime::from_minutes(100)).unwrap();
        assert_eq!(stats.objects, 100);
        assert_eq!(stats.unit.stores_accepted, 100);
        assert_eq!(stats.capacity, ByteSize::from_gib(1));

        let density = client.density_info(SimTime::from_minutes(100)).unwrap();
        assert!(density.density > 0.0);
        assert_eq!(density.used, ByteSize::from_mib(100));

        drop(client);
        let reports = service.shutdown().expect_clean();
        assert_eq!(reports.len(), 4);
        let logged: usize = reports.iter().map(|r| r.log.len()).sum();
        // 100 puts + 100 gets + 1 advise routed once each; stats and
        // density fan out to all four shards.
        assert_eq!(logged, 201 + 2 * 4);
        let total: u64 = reports.iter().map(|r| r.requests).sum();
        assert_eq!(total, 209);
        for (shard, report) in reports.iter().enumerate() {
            assert_eq!(report.shard, shard as u32);
            assert!(report.batches <= report.requests);
        }
    }

    #[test]
    fn health_reports_live_per_shard_telemetry() {
        let service = small_service(4);
        let mut client = service.client();
        for i in 0..100u64 {
            client
                .put(
                    ObjectId::new(i),
                    ByteSize::from_mib(1),
                    week_curve(),
                    SimTime::from_minutes(i),
                )
                .unwrap();
        }
        let health = client.health(SimTime::from_minutes(100)).unwrap();
        assert_eq!(health.shards.len(), 4);
        for (index, shard) in health.shards.iter().enumerate() {
            assert_eq!(shard.shard, index as u32);
            assert_eq!(shard.clock, SimTime::from_minutes(100));
            assert_eq!(shard.capacity, ByteSize::from_mib(256));
            // The blocking health probe drained this shard's queue.
            assert_eq!(shard.queue_depth, 0);
            assert_eq!(shard.rejected, 0);
            assert!(shard.requests >= 1, "the probe itself counts");
            assert!(shard.batches >= 1);
            assert!(shard.batches <= shard.requests);
            assert!(shard.used <= shard.capacity);
        }
        assert_eq!(health.shards.iter().map(|s| s.residents).sum::<u64>(), 100);
        assert_eq!(health.total_queue_depth(), 0);
        // 100 puts + the health probe on every shard.
        assert_eq!(health.total_requests(), 104);
        if cfg!(feature = "obs-off") {
            for shard in &health.shards {
                assert!(shard.latencies.is_empty(), "obs-off health is inert");
            }
        } else {
            for shard in &health.shards {
                let puts = shard
                    .latencies
                    .iter()
                    .find(|l| l.verb == VerbKind::Put)
                    .expect("every shard served puts");
                assert!(puts.samples > 0);
                assert!(puts.queue_wait_p50_ns <= puts.queue_wait_p99_ns);
                assert!(puts.service_p50_ns <= puts.service_p99_ns);
            }
        }
        drop(client);
        service.shutdown().expect_clean();
    }

    #[test]
    fn pipelined_submissions_carry_stage_traces() {
        let service = small_service(2);
        let client = service.client();
        let pending = client
            .submit(
                SimTime::ZERO,
                Request::Put {
                    id: ObjectId::new(7),
                    bytes: ByteSize::from_mib(1),
                    curve: week_curve(),
                    class: Default::default(),
                },
            )
            .unwrap();
        let (response, trace) = pending.wait_traced();
        assert!(matches!(response, Response::Put(Ok(_))));
        let fanout = client.submit(SimTime::ZERO, Request::Stats).unwrap();
        let (response, fanout_trace) = fanout.wait_traced();
        assert!(matches!(response, Response::Stats(Ok(_))));
        if cfg!(feature = "obs-off") {
            assert!(trace.is_none());
            assert!(fanout_trace.is_none());
        } else {
            let trace = trace.expect("tracing compiled in");
            assert!(trace.enqueued_ns <= trace.dequeued_ns);
            assert!(trace.dequeued_ns <= trace.applied_ns);
            assert!(trace.applied_ns <= trace.replied_ns);
            assert_eq!(trace.queue_wait_ns() + trace.service_ns(), trace.total_ns());
            let fanout_trace = fanout_trace.expect("tracing compiled in");
            // Ids allocate per shard leg; the fan-out came after the put.
            assert!(fanout_trace.id.raw() > trace.id.raw());
        }
        drop(client);
        service.shutdown().expect_clean();
    }

    #[test]
    fn pipelined_submissions_resolve_in_per_shard_fifo_order() {
        let service = small_service(2);
        let client = service.client();

        // Submit a whole window before collecting a single reply: puts,
        // then gets for the same keys, then a fan-out. Per-shard FIFO
        // means every get observes the put that preceded it.
        let puts: Vec<Pending> = (0..64u64)
            .map(|i| {
                client
                    .submit(
                        SimTime::from_minutes(i),
                        Request::Put {
                            id: ObjectId::new(i),
                            bytes: ByteSize::from_mib(1),
                            curve: week_curve(),
                            class: Default::default(),
                        },
                    )
                    .unwrap()
            })
            .collect();
        let gets: Vec<Pending> = (0..64u64)
            .map(|i| {
                client
                    .submit(
                        SimTime::from_minutes(64),
                        Request::Get {
                            id: ObjectId::new(i),
                        },
                    )
                    .unwrap()
            })
            .collect();
        let stats = client
            .submit(SimTime::from_minutes(64), Request::Stats)
            .unwrap();

        for pending in puts {
            assert!(matches!(pending.wait(), Response::Put(Ok(_))));
        }
        for pending in gets {
            match pending.wait() {
                Response::Get(Ok(Some(info))) => assert_eq!(info.size, ByteSize::from_mib(1)),
                other => panic!("pipelined get lost its put: {other:?}"),
            }
        }
        match stats.wait() {
            Response::Stats(Ok(stats)) => assert_eq!(stats.objects, 64),
            other => panic!("fan-out stats failed: {other:?}"),
        }

        // An abandoned submission must not wedge the worker.
        drop(
            client
                .submit(
                    SimTime::from_minutes(65),
                    Request::Get {
                        id: ObjectId::new(0),
                    },
                )
                .unwrap(),
        );
        drop(client);
        service.shutdown().expect_clean();
    }

    #[test]
    fn clients_are_cloneable_and_shareable_across_threads() {
        let service = small_service(2);
        let client = service.client();
        crossbeam::thread::scope(|scope| {
            for worker in 0..4u64 {
                let mut client = client.clone();
                scope.spawn(move |_| {
                    for i in 0..50u64 {
                        client
                            .put(
                                ObjectId::new(worker * 1000 + i),
                                ByteSize::from_mib(1),
                                week_curve(),
                                SimTime::from_minutes(i),
                            )
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let mut client = client;
        let stats = client.store_stats(SimTime::from_minutes(50)).unwrap();
        assert_eq!(stats.objects, 200);
        drop(client);
        service.shutdown().expect_clean();
    }

    #[test]
    fn full_ingest_queue_surfaces_as_queue_full() {
        // A hand-built client whose single shard has a depth-1 queue and
        // no worker: the first job fills the queue, the second try_call
        // must fail fast with the backpressure error.
        let telemetry = Arc::new(Telemetry::new(1));
        let (tx, _rx) = mpsc::sync_channel::<Job>(1);
        let (dummy_reply, _keep) = mpsc::channel();
        tx.send(Job {
            at: SimTime::ZERO,
            request: Request::Density,
            stamps: Stamps::default(),
            reply: dummy_reply,
        })
        .unwrap();
        let client = ServeClient {
            router: ShardRouter::new(1),
            ingests: vec![tx],
            telemetry: telemetry.clone(),
            obs: Obs::none(),
        };
        let response = client.try_call(
            SimTime::ZERO,
            Request::Get {
                id: ObjectId::new(1),
            },
        );
        match response {
            Response::Get(Err(Error::QueueFull { shard: 0 })) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
        if !cfg!(feature = "obs-off") {
            // The rejection counted; the failed enqueue was undone.
            assert_eq!(telemetry.rejected_count(0), 1);
            assert_eq!(telemetry.depth(0), 0, "hand-sent job is untracked");
        }
    }

    #[test]
    fn dead_workers_surface_as_disconnected() {
        let (tx, rx) = mpsc::sync_channel::<Job>(1);
        drop(rx);
        let mut client = ServeClient {
            router: ShardRouter::new(1),
            ingests: vec![tx],
            telemetry: Arc::new(Telemetry::new(1)),
            obs: Obs::none(),
        };
        let err = client
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(1),
                week_curve(),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Disconnected));
        let err = client.store_stats(SimTime::ZERO).unwrap_err();
        assert!(matches!(err, Error::Disconnected));
        let err = client.health(SimTime::ZERO).unwrap_err();
        assert!(matches!(err, Error::Disconnected));
    }

    /// A fresh scratch directory under the workspace `target/` (tests
    /// must not touch anything outside the repository).
    fn scratch(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = PathBuf::from(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../target/serve-test-scratch"
        ))
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).expect("clear stale scratch");
        }
        dir
    }

    /// A service with one healthy worker and one that dies mid-flight:
    /// shutdown must still join and report the healthy shard, carrying
    /// the dead one's panic message instead of propagating the panic and
    /// discarding every later shard's final state (the old behavior).
    fn half_dead_service() -> Tempimpd {
        let healthy = std::thread::spawn(|| ShardReport {
            shard: 0,
            unit: StorageUnit::builder(ByteSize::from_mib(1)).build(),
            final_now: SimTime::from_minutes(7),
            requests: 3,
            batches: 1,
            log: Vec::new(),
            disk: None,
        });
        let dead = std::thread::spawn(|| -> ShardReport {
            panic!("segment log sync failed on the way out")
        });
        // Wait out the deliberate panic so its abort doesn't race the
        // assertions below.
        while !dead.is_finished() {
            std::thread::yield_now();
        }
        Tempimpd {
            router: ShardRouter::new(2),
            ingests: Vec::new(),
            workers: vec![healthy, dead],
            telemetry: Arc::new(Telemetry::new(2)),
            obs: Obs::none(),
            shard_capacity: ByteSize::from_mib(1),
            policy: EvictionPolicy::Preemptive,
            sweep_every: SimDuration::DAY,
        }
    }

    #[test]
    fn shutdown_survives_a_panicked_shard_and_reports_the_rest() {
        let report = half_dead_service().shutdown();
        assert!(!report.is_clean());
        assert_eq!(report.reports.len(), 1);
        assert_eq!(report.reports[0].shard, 0);
        assert_eq!(report.reports[0].final_now, SimTime::from_minutes(7));
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].shard, 1);
        assert!(
            report.failures[0]
                .message
                .contains("segment log sync failed"),
            "panic message lost: {:?}",
            report.failures[0].message
        );
    }

    #[test]
    #[should_panic(expected = "shard 1: segment log sync failed on the way out")]
    fn expect_clean_propagates_shard_panics() {
        half_dead_service().shutdown().expect_clean();
    }

    #[test]
    fn durable_service_resumes_from_its_segment_logs() {
        let dir = scratch("service-restart");
        let build = || {
            Tempimpd::builder()
                .shards(2)
                .shard_capacity(ByteSize::from_mib(256))
                .durable(&dir)
                .observer(Obs::none())
                .spawn()
        };

        let service = build();
        let mut client = service.client();
        for i in 0..50u64 {
            client
                .put(
                    ObjectId::new(i),
                    ByteSize::from_mib(1),
                    week_curve(),
                    SimTime::from_minutes(i),
                )
                .unwrap();
        }
        let before = client.store_stats(SimTime::from_minutes(50)).unwrap();
        drop(client);
        let reports = service.shutdown().expect_clean();
        for report in &reports {
            let disk = report.disk.as_ref().expect("durable shards report disk");
            assert!(disk.file_bytes > 0, "mutations reached the log");
        }

        // A second service on the same directory serves the same objects
        // without a single re-put.
        let service = build();
        let mut client = service.client();
        let after = client.store_stats(SimTime::from_minutes(50)).unwrap();
        assert_eq!(after.objects, before.objects);
        assert_eq!(after.used, before.used);
        for i in 0..50u64 {
            let info = client
                .get_info(ObjectId::new(i), SimTime::from_minutes(50))
                .unwrap()
                .expect("object survived the restart");
            assert_eq!(info.size, ByteSize::from_mib(1));
        }
        drop(client);
        service.shutdown().expect_clean();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_full_rejections_flow_back_as_store_errors() {
        let service = Tempimpd::builder()
            .shards(1)
            .shard_capacity(ByteSize::from_mib(10))
            .observer(Obs::none())
            .spawn();
        let mut client = service.client();
        client
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(10),
                ImportanceCurve::Persistent,
                SimTime::ZERO,
            )
            .unwrap();
        let err = client
            .put(
                ObjectId::new(2),
                ByteSize::from_mib(10),
                ImportanceCurve::Persistent,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Store(_)));
        drop(client);
        service.shutdown().expect_clean();
    }
}
