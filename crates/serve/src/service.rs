//! The sharded serving front-end: worker threads, ingest queues, clients.
//!
//! A [`Tempimpd`] owns N worker threads, each running a private
//! [`ShardEngine`] fed by a bounded MPSC ingest queue. [`ServeClient`]s
//! hash every keyed request to its shard ([`ShardRouter`]), enqueue it
//! with the client's timestamp, and block on a per-request reply channel;
//! whole-store queries (`Density`, `Stats`) fan out to every shard and
//! aggregate in shard order. Workers drain requests in batches and
//! process each batch at a single effective instant — see
//! [`ShardEngine`] for why that keeps shards deterministically replayable.

use std::fmt;
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::thread::JoinHandle;

use sim_core::{ByteSize, Obs, SimDuration, SimTime};
use temporal_importance::protocol::{
    DensityInfo, Request, Response, ShardRouter, StoreApi, StoreStats,
};
use temporal_importance::{Error, EvictionPolicy, StorageUnit};

use crate::engine::ShardEngine;

/// One queued request: the client's timestamp, the request, and where to
/// send the answer.
struct Job {
    at: SimTime,
    request: Request,
    reply: Sender<Response>,
}

/// Which protocol verb a request was, kept so a transport failure after
/// the request has been moved into a queue can still build the matching
/// [`Response`] variant.
#[derive(Debug, Clone, Copy)]
enum Verb {
    Put,
    Get,
    Advise,
    Density,
    Stats,
}

impl Verb {
    fn of(request: &Request) -> Verb {
        match request {
            Request::Put { .. } => Verb::Put,
            Request::Get { .. } => Verb::Get,
            Request::Advise { .. } => Verb::Advise,
            Request::Density => Verb::Density,
            Request::Stats => Verb::Stats,
        }
    }

    fn span_name(self) -> &'static str {
        match self {
            Verb::Put => "span.serve.put",
            Verb::Get => "span.serve.get",
            Verb::Advise => "span.serve.advise",
            Verb::Density => "span.serve.density",
            Verb::Stats => "span.serve.stats",
        }
    }

    fn failed(self, error: Error) -> Response {
        match self {
            Verb::Put => Response::Put(Err(error)),
            Verb::Get => Response::Get(Err(error)),
            Verb::Advise => Response::Advise(Err(error)),
            Verb::Density => Response::Density(Err(error)),
            Verb::Stats => Response::Stats(Err(error)),
        }
    }
}

/// Configures and spawns a [`Tempimpd`]. Obtained from
/// [`Tempimpd::builder`].
#[derive(Debug, Clone)]
#[must_use = "call .spawn() to start the service"]
pub struct TempimpdBuilder {
    shards: u32,
    shard_capacity: ByteSize,
    policy: EvictionPolicy,
    queue_depth: usize,
    batch_max: usize,
    sweep_every: SimDuration,
    record_log: bool,
    obs: Option<Obs>,
}

impl TempimpdBuilder {
    /// Number of independent shards / worker threads (default 8).
    pub fn shards(mut self, shards: u32) -> Self {
        self.shards = shards;
        self
    }

    /// Capacity of each shard's storage unit (default 1 GiB). Total
    /// service capacity is `shards × shard_capacity`.
    pub fn shard_capacity(mut self, capacity: ByteSize) -> Self {
        self.shard_capacity = capacity;
        self
    }

    /// Eviction policy for every shard (default
    /// [`EvictionPolicy::Preemptive`], the paper's mechanism).
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Bound of each shard's ingest queue (default 1024). A full queue is
    /// the backpressure signal: blocking sends wait, non-blocking sends
    /// fail with [`Error::QueueFull`].
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Most requests a worker drains into one batch (default 64). Every
    /// request in a batch is processed at the batch's latest timestamp,
    /// so larger batches amortize more breakpoint/expiry work.
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// How much simulated time may elapse on a shard between
    /// expired-object sweeps (default one day).
    pub fn sweep_every(mut self, cadence: SimDuration) -> Self {
        self.sweep_every = cadence;
        self
    }

    /// When true, every worker records its effective request log and
    /// returns it in its [`ShardReport`] — the input to
    /// [`replay`](crate::replay) in the differential determinism tests
    /// (default off; the log grows with every request).
    pub fn record_log(mut self, record: bool) -> Self {
        self.record_log = record;
        self
    }

    /// Attaches an explicit observer shared by all shards and clients.
    /// Without this, the service observes into [`Obs::global`].
    pub fn observer(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Spawns the worker threads and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics if `shards`, `queue_depth`, or `batch_max` is zero, or if
    /// the OS refuses to spawn a thread.
    pub fn spawn(self) -> Tempimpd {
        assert!(self.shards > 0, "a service needs at least one shard");
        assert!(self.queue_depth > 0, "ingest queues need capacity");
        assert!(self.batch_max > 0, "batches must hold at least one request");
        let obs = self.obs.unwrap_or_else(Obs::global);
        let mut ingests = Vec::with_capacity(self.shards as usize);
        let mut workers = Vec::with_capacity(self.shards as usize);
        for shard in 0..self.shards {
            let (tx, rx) = mpsc::sync_channel(self.queue_depth);
            let worker = Worker {
                shard,
                capacity: self.shard_capacity,
                policy: self.policy,
                sweep_every: self.sweep_every,
                batch_max: self.batch_max,
                record_log: self.record_log,
                obs: obs.clone(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("tempimpd-shard-{shard}"))
                .spawn(move || worker.run(rx))
                .expect("spawn shard worker");
            ingests.push(tx);
            workers.push(handle);
        }
        Tempimpd {
            router: ShardRouter::new(self.shards),
            ingests,
            workers,
            obs,
            shard_capacity: self.shard_capacity,
            policy: self.policy,
            sweep_every: self.sweep_every,
        }
    }
}

/// What one shard worker hands back when the service shuts down.
#[derive(Debug)]
#[non_exhaustive]
pub struct ShardReport {
    /// The shard index.
    pub shard: u32,
    /// The shard's final storage unit state.
    pub unit: StorageUnit,
    /// The shard's final effective instant.
    pub final_now: SimTime,
    /// Requests the shard processed.
    pub requests: u64,
    /// Batches the shard drained.
    pub batches: u64,
    /// The effective request log, if the service was built with
    /// [`record_log`](TempimpdBuilder::record_log). Feeding this to
    /// [`replay`](crate::replay) must reproduce `unit` exactly.
    pub log: Vec<(SimTime, Request)>,
}

/// Per-shard worker state; `run` consumes it on the shard thread.
struct Worker {
    shard: u32,
    capacity: ByteSize,
    policy: EvictionPolicy,
    sweep_every: SimDuration,
    batch_max: usize,
    record_log: bool,
    obs: Obs,
}

impl Worker {
    fn run(self, ingest: Receiver<Job>) -> ShardReport {
        let mut engine = ShardEngine::with_observer(
            self.capacity,
            self.policy,
            self.sweep_every,
            self.obs.clone(),
        );
        let mut log = Vec::new();
        let mut batch: Vec<Job> = Vec::with_capacity(self.batch_max);
        let mut requests = 0u64;
        let mut batches = 0u64;
        // Block for the first request of a batch, then drain greedily up
        // to batch_max. The whole batch is processed at its latest
        // timestamp: one clock advance, at most one sweep, then every
        // request applies at the same instant.
        while let Ok(first) = ingest.recv() {
            batch.push(first);
            while batch.len() < self.batch_max {
                match ingest.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
            let latest = batch
                .iter()
                .map(|job| job.at)
                .max()
                .expect("non-empty batch");
            let now = engine.observe(latest);
            let drained = batch.len() as u64;
            let mut span = self.obs.span("span.serve.shard_batch");
            span.sim_to(now);
            for job in batch.drain(..) {
                if self.record_log {
                    log.push((now, job.request.clone()));
                }
                let response = engine.call(now, job.request);
                // A client that gave up on the reply is not an error.
                let _ = job.reply.send(response);
            }
            drop(span);
            requests += drained;
            batches += 1;
            self.obs.counter("serve.requests", drained);
            self.obs.counter("serve.batches", 1);
            self.obs.record("serve.batch_fill", drained);
            self.obs.event(
                now,
                "serve.batch",
                &[("shard", u64::from(self.shard)), ("drained", drained)],
            );
        }
        let final_now = engine.now();
        ShardReport {
            shard: self.shard,
            unit: engine.into_unit(),
            final_now,
            requests,
            batches,
            log,
        }
    }
}

/// A running sharded serving layer.
///
/// Hand out connections with [`client`](Tempimpd::client); when every
/// client has been dropped, [`shutdown`](Tempimpd::shutdown) joins the
/// workers and returns their final state.
///
/// # Examples
///
/// ```
/// use sim_core::{ByteSize, SimDuration, SimTime};
/// use tempimpd::Tempimpd;
/// use temporal_importance::protocol::StoreApi;
/// use temporal_importance::{ImportanceCurve, ObjectId};
///
/// let service = Tempimpd::builder()
///     .shards(2)
///     .shard_capacity(ByteSize::from_mib(256))
///     .spawn();
/// let mut client = service.client();
///
/// let curve = ImportanceCurve::fixed_lifetime(SimDuration::from_days(7));
/// client
///     .put(ObjectId::new(1), ByteSize::from_mib(10), curve, SimTime::ZERO)
///     .unwrap();
/// let stats = client.store_stats(SimTime::ZERO).unwrap();
/// assert_eq!(stats.objects, 1);
///
/// drop(client);
/// let reports = service.shutdown();
/// assert_eq!(reports.len(), 2);
/// ```
#[derive(Debug)]
pub struct Tempimpd {
    router: ShardRouter,
    ingests: Vec<SyncSender<Job>>,
    workers: Vec<JoinHandle<ShardReport>>,
    obs: Obs,
    shard_capacity: ByteSize,
    policy: EvictionPolicy,
    sweep_every: SimDuration,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("at", &self.at).finish()
    }
}

impl Tempimpd {
    /// Starts configuring a service; see [`TempimpdBuilder`].
    pub fn builder() -> TempimpdBuilder {
        TempimpdBuilder {
            shards: 8,
            shard_capacity: ByteSize::from_gib(1),
            policy: EvictionPolicy::Preemptive,
            queue_depth: 1024,
            batch_max: 64,
            sweep_every: SimDuration::DAY,
            record_log: false,
            obs: None,
        }
    }

    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.router.shards()
    }

    /// Each shard's capacity (replay needs it to rebuild identical units).
    pub fn shard_capacity(&self) -> ByteSize {
        self.shard_capacity
    }

    /// The shards' eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The shards' expiry-sweep cadence.
    pub fn sweep_every(&self) -> SimDuration {
        self.sweep_every
    }

    /// A new connection to the service. Clients are cheap to clone and
    /// `Send`, so load generators hand one to each thread.
    pub fn client(&self) -> ServeClient {
        ServeClient {
            router: self.router,
            ingests: self.ingests.clone(),
            obs: self.obs.clone(),
        }
    }

    /// Stops the workers and returns one [`ShardReport`] per shard, in
    /// shard order.
    ///
    /// Workers exit when their ingest queue has no senders left, so every
    /// [`ServeClient`] must be dropped first — joining while clients are
    /// alive would wait forever.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker panicked.
    pub fn shutdown(mut self) -> Vec<ShardReport> {
        self.ingests.clear();
        self.workers
            .drain(..)
            .map(|worker| worker.join().expect("shard worker panicked"))
            .collect()
    }
}

/// A connection to a [`Tempimpd`]: implements [`StoreApi`] by enqueueing
/// requests to the owning shard and blocking on the reply.
///
/// Keyed verbs (`put`/`get`/`advise`) touch exactly one shard; `density`
/// and `stats` fan out to all shards and aggregate in shard order. The
/// non-blocking [`try_call`](ServeClient::try_call) surfaces a full
/// ingest queue as [`Error::QueueFull`] instead of waiting.
#[derive(Debug, Clone)]
pub struct ServeClient {
    router: ShardRouter,
    ingests: Vec<SyncSender<Job>>,
    obs: Obs,
}

impl ServeClient {
    /// The shard count.
    pub fn shards(&self) -> u32 {
        self.router.shards()
    }

    /// Like [`StoreApi::call`], but a full ingest queue fails fast with
    /// [`Error::QueueFull`] instead of blocking — the caller's
    /// backpressure signal.
    pub fn try_call(&self, now: SimTime, request: Request) -> Response {
        self.dispatch(now, request, false)
    }

    /// Routes `request` to its shard(s) and returns without waiting for
    /// the reply. The returned [`Pending`] is the claim ticket; redeem it
    /// with [`Pending::wait`].
    ///
    /// This is the pipelining primitive: a client that keeps a window of
    /// submissions in flight amortizes the thread wake-ups of the
    /// request channels over the whole window, where [`StoreApi::call`]
    /// pays a round trip per request. Replies still arrive in per-shard
    /// FIFO order, so per-shard effects of earlier submissions are
    /// visible to later ones regardless of when the replies are
    /// collected.
    ///
    /// Fails with [`Error::Disconnected`] if a target worker is gone.
    /// The blocking send waits while an ingest queue is full; use
    /// [`try_call`](ServeClient::try_call) for fail-fast backpressure.
    pub fn submit(&self, now: SimTime, request: Request) -> Result<Pending, Error> {
        self.submit_inner(now, request, true)
    }

    fn submit_inner(
        &self,
        now: SimTime,
        request: Request,
        blocking: bool,
    ) -> Result<Pending, Error> {
        let verb = Verb::of(&request);
        let replies = match &request {
            Request::Put { id, .. } | Request::Get { id } | Request::Advise { id, .. } => {
                let shard = self.router.route(*id);
                let (reply_tx, reply_rx) = mpsc::channel();
                let job = Job {
                    at: now,
                    request,
                    reply: reply_tx,
                };
                enqueue(&self.ingests[shard as usize], job, shard, blocking)?;
                Replies::One(reply_rx)
            }
            // Fan-out: every shard gets the request, each with its own
            // reply channel, kept in shard order so aggregation is
            // deterministic (float summation order never depends on
            // which worker answers first).
            Request::Density | Request::Stats => {
                let mut replies = Vec::with_capacity(self.ingests.len());
                for (shard, queue) in self.ingests.iter().enumerate() {
                    let (reply_tx, reply_rx) = mpsc::channel();
                    let job = Job {
                        at: now,
                        request: request.clone(),
                        reply: reply_tx,
                    };
                    enqueue(queue, job, shard as u32, blocking)?;
                    replies.push(reply_rx);
                }
                Replies::FanOut(replies)
            }
        };
        Ok(Pending { verb, replies })
    }

    /// Blocking calls span the full round trip under the verb's
    /// `span.serve.*` name; pipelined submissions don't (the client
    /// decides when to collect, so submit-to-wait covers its own
    /// scheduling, not the service — callers wanting pipelined latency
    /// time their own windows).
    fn dispatch(&self, now: SimTime, request: Request, blocking: bool) -> Response {
        let verb = Verb::of(&request);
        let mut span = self.obs.span(verb.span_name());
        span.sim_to(now);
        match self.submit_inner(now, request, blocking) {
            Ok(pending) => pending.wait(),
            Err(error) => verb.failed(error),
        }
    }
}

fn enqueue(queue: &SyncSender<Job>, job: Job, shard: u32, blocking: bool) -> Result<(), Error> {
    if blocking {
        queue.send(job).map_err(|_| Error::Disconnected)
    } else {
        match queue.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => Err(Error::QueueFull { shard }),
            Err(TrySendError::Disconnected(_)) => Err(Error::Disconnected),
        }
    }
}

/// A submitted request whose reply has not been collected yet — the
/// other half of [`ServeClient::submit`].
///
/// Holds the per-request reply channel(s); [`wait`](Pending::wait)
/// collects the response. Dropping a `Pending` abandons the reply — the
/// worker still processes the request (it may already have), only the
/// answer is discarded.
pub struct Pending {
    verb: Verb,
    replies: Replies,
}

enum Replies {
    One(Receiver<Response>),
    FanOut(Vec<Receiver<Response>>),
}

impl fmt::Debug for Pending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let outstanding = match &self.replies {
            Replies::One(_) => 1,
            Replies::FanOut(replies) => replies.len(),
        };
        f.debug_struct("Pending")
            .field("verb", &self.verb)
            .field("outstanding", &outstanding)
            .finish()
    }
}

impl Pending {
    /// Blocks until the reply arrives (all shard replies, for a fan-out
    /// verb) and returns it. A worker that died before answering yields
    /// the verb's response variant carrying [`Error::Disconnected`].
    pub fn wait(self) -> Response {
        let Pending { verb, replies } = self;
        match replies {
            Replies::One(reply_rx) => reply_rx
                .recv()
                .unwrap_or_else(|_| verb.failed(Error::Disconnected)),
            Replies::FanOut(reply_rxs) => {
                let mut responses = Vec::with_capacity(reply_rxs.len());
                for reply_rx in reply_rxs {
                    match reply_rx.recv() {
                        Ok(response) => responses.push(response),
                        Err(_) => return verb.failed(Error::Disconnected),
                    }
                }
                aggregate(verb, responses)
            }
        }
    }
}

/// Folds per-shard answers to a whole-store query into one response.
fn aggregate(verb: Verb, responses: Vec<Response>) -> Response {
    match verb {
        Verb::Stats => {
            let mut total = StoreStats::default();
            for response in responses {
                match response {
                    Response::Stats(Ok(stats)) => total.absorb(&stats),
                    Response::Stats(Err(error)) => return Response::Stats(Err(error)),
                    other => panic!("protocol violation: Stats answered with {other:?}"),
                }
            }
            Response::Stats(Ok(total))
        }
        Verb::Density => {
            let mut weighted = 0.0f64;
            let mut capacity = ByteSize::ZERO;
            let mut used = ByteSize::ZERO;
            for response in responses {
                match response {
                    Response::Density(Ok(info)) => {
                        weighted += info.density * info.capacity.as_bytes() as f64;
                        capacity += info.capacity;
                        used += info.used;
                    }
                    Response::Density(Err(error)) => return Response::Density(Err(error)),
                    other => panic!("protocol violation: Density answered with {other:?}"),
                }
            }
            let density = if capacity.is_zero() {
                0.0
            } else {
                weighted / capacity.as_bytes() as f64
            };
            Response::Density(Ok(DensityInfo {
                density,
                capacity,
                used,
            }))
        }
        _ => unreachable!("only whole-store verbs aggregate"),
    }
}

impl StoreApi for ServeClient {
    fn call(&mut self, now: SimTime, request: Request) -> Response {
        self.dispatch(now, request, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal_importance::{Importance, ImportanceCurve, ObjectId};

    fn week_curve() -> ImportanceCurve {
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(7))
    }

    fn small_service(shards: u32) -> Tempimpd {
        Tempimpd::builder()
            .shards(shards)
            .shard_capacity(ByteSize::from_mib(256))
            .record_log(true)
            .observer(Obs::none())
            .spawn()
    }

    #[test]
    fn serves_puts_gets_and_aggregate_queries() {
        let service = small_service(4);
        let mut client = service.client();
        for i in 0..100u64 {
            client
                .put(
                    ObjectId::new(i),
                    ByteSize::from_mib(1),
                    week_curve(),
                    SimTime::from_minutes(i),
                )
                .unwrap();
        }
        for i in 0..100u64 {
            let info = client
                .get_info(ObjectId::new(i), SimTime::from_minutes(100))
                .unwrap()
                .expect("object stored");
            assert_eq!(info.size, ByteSize::from_mib(1));
        }
        let advice = client
            .advise(
                ObjectId::new(1000),
                ByteSize::from_mib(1),
                Importance::FULL,
                SimTime::from_minutes(100),
            )
            .unwrap();
        assert!(advice.is_admitted());

        let stats = client.store_stats(SimTime::from_minutes(100)).unwrap();
        assert_eq!(stats.objects, 100);
        assert_eq!(stats.unit.stores_accepted, 100);
        assert_eq!(stats.capacity, ByteSize::from_gib(1));

        let density = client.density_info(SimTime::from_minutes(100)).unwrap();
        assert!(density.density > 0.0);
        assert_eq!(density.used, ByteSize::from_mib(100));

        drop(client);
        let reports = service.shutdown();
        assert_eq!(reports.len(), 4);
        let logged: usize = reports.iter().map(|r| r.log.len()).sum();
        // 100 puts + 100 gets + 1 advise routed once each; stats and
        // density fan out to all four shards.
        assert_eq!(logged, 201 + 2 * 4);
        let total: u64 = reports.iter().map(|r| r.requests).sum();
        assert_eq!(total, 209);
        for (shard, report) in reports.iter().enumerate() {
            assert_eq!(report.shard, shard as u32);
            assert!(report.batches <= report.requests);
        }
    }

    #[test]
    fn pipelined_submissions_resolve_in_per_shard_fifo_order() {
        let service = small_service(2);
        let client = service.client();

        // Submit a whole window before collecting a single reply: puts,
        // then gets for the same keys, then a fan-out. Per-shard FIFO
        // means every get observes the put that preceded it.
        let puts: Vec<Pending> = (0..64u64)
            .map(|i| {
                client
                    .submit(
                        SimTime::from_minutes(i),
                        Request::Put {
                            id: ObjectId::new(i),
                            bytes: ByteSize::from_mib(1),
                            curve: week_curve(),
                            class: Default::default(),
                        },
                    )
                    .unwrap()
            })
            .collect();
        let gets: Vec<Pending> = (0..64u64)
            .map(|i| {
                client
                    .submit(
                        SimTime::from_minutes(64),
                        Request::Get {
                            id: ObjectId::new(i),
                        },
                    )
                    .unwrap()
            })
            .collect();
        let stats = client
            .submit(SimTime::from_minutes(64), Request::Stats)
            .unwrap();

        for pending in puts {
            assert!(matches!(pending.wait(), Response::Put(Ok(_))));
        }
        for pending in gets {
            match pending.wait() {
                Response::Get(Ok(Some(info))) => assert_eq!(info.size, ByteSize::from_mib(1)),
                other => panic!("pipelined get lost its put: {other:?}"),
            }
        }
        match stats.wait() {
            Response::Stats(Ok(stats)) => assert_eq!(stats.objects, 64),
            other => panic!("fan-out stats failed: {other:?}"),
        }

        // An abandoned submission must not wedge the worker.
        drop(
            client
                .submit(
                    SimTime::from_minutes(65),
                    Request::Get {
                        id: ObjectId::new(0),
                    },
                )
                .unwrap(),
        );
        drop(client);
        service.shutdown();
    }

    #[test]
    fn clients_are_cloneable_and_shareable_across_threads() {
        let service = small_service(2);
        let client = service.client();
        crossbeam::thread::scope(|scope| {
            for worker in 0..4u64 {
                let mut client = client.clone();
                scope.spawn(move |_| {
                    for i in 0..50u64 {
                        client
                            .put(
                                ObjectId::new(worker * 1000 + i),
                                ByteSize::from_mib(1),
                                week_curve(),
                                SimTime::from_minutes(i),
                            )
                            .unwrap();
                    }
                });
            }
        })
        .unwrap();
        let mut client = client;
        let stats = client.store_stats(SimTime::from_minutes(50)).unwrap();
        assert_eq!(stats.objects, 200);
        drop(client);
        service.shutdown();
    }

    #[test]
    fn full_ingest_queue_surfaces_as_queue_full() {
        // A hand-built client whose single shard has a depth-1 queue and
        // no worker: the first job fills the queue, the second try_call
        // must fail fast with the backpressure error.
        let (tx, _rx) = mpsc::sync_channel::<Job>(1);
        let (dummy_reply, _keep) = mpsc::channel();
        tx.send(Job {
            at: SimTime::ZERO,
            request: Request::Density,
            reply: dummy_reply,
        })
        .unwrap();
        let client = ServeClient {
            router: ShardRouter::new(1),
            ingests: vec![tx],
            obs: Obs::none(),
        };
        let response = client.try_call(
            SimTime::ZERO,
            Request::Get {
                id: ObjectId::new(1),
            },
        );
        match response {
            Response::Get(Err(Error::QueueFull { shard: 0 })) => {}
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn dead_workers_surface_as_disconnected() {
        let (tx, rx) = mpsc::sync_channel::<Job>(1);
        drop(rx);
        let mut client = ServeClient {
            router: ShardRouter::new(1),
            ingests: vec![tx],
            obs: Obs::none(),
        };
        let err = client
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(1),
                week_curve(),
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Disconnected));
        let err = client.store_stats(SimTime::ZERO).unwrap_err();
        assert!(matches!(err, Error::Disconnected));
    }

    #[test]
    fn shard_full_rejections_flow_back_as_store_errors() {
        let service = Tempimpd::builder()
            .shards(1)
            .shard_capacity(ByteSize::from_mib(10))
            .observer(Obs::none())
            .spawn();
        let mut client = service.client();
        client
            .put(
                ObjectId::new(1),
                ByteSize::from_mib(10),
                ImportanceCurve::Persistent,
                SimTime::ZERO,
            )
            .unwrap();
        let err = client
            .put(
                ObjectId::new(2),
                ByteSize::from_mib(10),
                ImportanceCurve::Persistent,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Store(_)));
        drop(client);
        service.shutdown();
    }
}
