//! Property and differential tests of the churn subsystem.
//!
//! * Live-walk safety: across arbitrary fail/rejoin interleavings the
//!   overlay stays connected (edges outlive outages) and walks only ever
//!   visit live nodes.
//! * Slicing differential: replaying a churn schedule through the
//!   sim-core event loop in arbitrarily-cut `advance` slices must leave
//!   the cluster and directory in exactly the state a naive one-pass
//!   application of the same sorted events produces.

use proptest::prelude::*;
use temporal_reclaim::besteffs::churn::{AvailabilitySchedule, ChurnDriver, ChurnSchedule};
use temporal_reclaim::besteffs::{
    Besteffs, ChurnEventKind, Directory, NodeId, ObjectName, Overlay,
};
use temporal_reclaim::core::{ImportanceCurve, ObjectId, ObjectSpec};
use temporal_reclaim::sim::rng;
use temporal_reclaim::{ByteSize, SimDuration, SimTime};

const FLEET: usize = 24;

fn spec(id: u64) -> ObjectSpec {
    ObjectSpec::new(
        ObjectId::new(id),
        ByteSize::from_mib(10),
        ImportanceCurve::fixed_lifetime(SimDuration::from_days(365)),
    )
}

proptest! {
    /// Walks filtered by an arbitrary (mutating) membership mask never
    /// return a dead node and never lose overlay connectivity: a failed
    /// desktop keeps its edges for when it reboots.
    #[test]
    fn walks_only_visit_live_nodes(
        seed in 0u64..1_000,
        steps in 0usize..12,
        toggles in proptest::collection::vec(0usize..FLEET, 1..60),
    ) {
        let mut rand = rng::seeded(seed);
        let overlay = Overlay::random(FLEET, 5, &mut rand);
        let mut alive = [true; FLEET];
        for node in toggles {
            alive[node] = !alive[node];
            prop_assert!(overlay.is_connected(), "edges must survive outages");
            let Some(start) = (0..FLEET).find(|&i| alive[i]) else {
                continue;
            };
            let sample = overlay.sample_walks(
                NodeId::new(start),
                4,
                steps,
                &mut rand,
                |n| alive[n.index()],
            );
            for visited in &sample {
                prop_assert!(
                    alive[visited.index()],
                    "walk returned dead {visited} (alive mask {alive:?})"
                );
            }
            let mut unique = sample.clone();
            unique.sort();
            unique.dedup();
            prop_assert_eq!(unique.len(), sample.len(), "sampled nodes must be distinct");
            if let Some(end) =
                overlay.random_walk_live(NodeId::new(start), steps, &mut rand, |n| alive[n.index()])
            {
                prop_assert!(alive[end.index()]);
            }
        }
    }

    /// Placements under arbitrary churn only ever land on live nodes, and
    /// every surviving directory entry stays resolvable (live node, current
    /// incarnation) because the failure path purges with the node.
    #[test]
    fn placements_land_live_and_directory_stays_current(
        seed in 0u64..1_000,
        flips in proptest::collection::vec((0usize..FLEET, 0u64..30), 1..40),
    ) {
        let mut rand = rng::stream(seed, "churn-placement");
        let mut cluster = Besteffs::builder(FLEET, ByteSize::from_mib(100)).build(&mut rand);
        let mut directory = Directory::new();
        let mut next_id = 0u64;
        let mut now = SimTime::ZERO;
        for (node, delta_hours) in flips {
            now += SimDuration::from_hours(delta_hours);
            let node = NodeId::new(node);
            if cluster.is_alive(node) {
                cluster.fail_node_purging(node, now, &mut directory);
            } else {
                cluster.rejoin_node(node);
            }
            for _ in 0..3 {
                next_id += 1;
                if let Ok(placed) = cluster.place(spec(next_id), now, &mut rand) {
                    prop_assert!(cluster.is_alive(placed.node), "placed on dead node");
                    directory.publish_on(
                        ObjectName::new(format!("obj-{next_id}")),
                        ObjectId::new(next_id),
                        placed.node,
                        cluster.incarnation(placed.node),
                    );
                }
            }
            for name in directory.names() {
                let entry = directory.latest(name).expect("non-empty history");
                prop_assert!(
                    cluster.entry_is_current(entry),
                    "stale entry survived the purge path: {name} -> {entry:?}"
                );
            }
        }
        let epoch_losses: u64 = cluster.failure_epochs().iter().map(|e| e.objects_lost).sum();
        prop_assert_eq!(epoch_losses, cluster.stats().objects_lost);
    }
}

/// Applies `schedule`'s events naively (sorted list, no event loop) up to
/// each cut, mirroring what `ChurnDriver::advance` should do.
fn naive_advance(
    events: &[temporal_reclaim::besteffs::ChurnEvent],
    applied: &mut usize,
    until: SimTime,
    cluster: &mut Besteffs,
    directory: &mut Directory,
) {
    while *applied < events.len() && events[*applied].at <= until {
        let event = events[*applied];
        *applied += 1;
        match event.kind {
            ChurnEventKind::Fail => {
                cluster.fail_node_purging(event.node, event.at, directory);
            }
            ChurnEventKind::Rejoin => {
                cluster.rejoin_node(event.node);
            }
        }
    }
}

fn directory_fingerprint(directory: &Directory) -> Vec<(String, usize, ObjectId, NodeId, u64)> {
    directory
        .names()
        .map(|name| {
            let latest = directory.latest(name).expect("non-empty history");
            (
                name.as_str().to_string(),
                directory.version_count(name),
                latest.object,
                latest.node,
                latest.incarnation,
            )
        })
        .collect()
}

/// Drives one generated scenario through the event loop (sliced at the
/// generated cut offsets) and through the naive one-pass oracle, placing
/// the same objects at every cut, and asserts identical end states.
fn run_slicing_differential(
    seed: u64,
    shape_centi: u64,
    cut_offsets: Vec<u64>,
) -> Result<(), TestCaseError> {
    let horizon = SimTime::from_days(120);
    let schedule = ChurnSchedule::generate(
        FLEET,
        horizon,
        &AvailabilitySchedule::Weibull {
            shape: shape_centi as f64 / 100.0,
            session_scale: SimDuration::from_days(10),
            downtime_scale: SimDuration::from_hours(18),
        },
        seed,
    );

    // Arbitrary, non-decreasing cut times over the horizon (plus the
    // horizon itself so both sides drain completely).
    let mut cuts: Vec<SimTime> = cut_offsets
        .iter()
        .map(|&m| SimTime::from_minutes(m % (horizon.as_minutes() + 1)))
        .collect();
    cuts.sort();
    cuts.push(horizon);

    let build = |label: &str| {
        let mut rand = rng::stream(seed, label);
        let cluster = Besteffs::builder(FLEET, ByteSize::from_mib(200)).build(&mut rand);
        (cluster, rand)
    };
    // Identical label → identical overlay and placement stream on both
    // sides; only the churn application mechanism differs.
    let (mut sliced, mut sliced_rng) = build("diff");
    let (mut naive, mut naive_rng) = build("diff");
    let mut driver = ChurnDriver::new(schedule.clone());
    let mut sliced_dir = Directory::new();
    let mut naive_dir = Directory::new();
    let mut applied = 0usize;
    let mut next_id = 0u64;

    for &cut in &cuts {
        driver.advance(cut, &mut sliced, &mut sliced_dir);
        naive_advance(
            schedule.events(),
            &mut applied,
            cut,
            &mut naive,
            &mut naive_dir,
        );
        for _ in 0..2 {
            next_id += 1;
            let a = sliced.place(spec(next_id), cut, &mut sliced_rng);
            let b = naive.place(spec(next_id), cut, &mut naive_rng);
            prop_assert_eq!(a.is_ok(), b.is_ok(), "placement outcome diverged at {cut}");
            if let (Ok(pa), Ok(pb)) = (a, b) {
                prop_assert_eq!(pa.node, pb.node, "placement node diverged at {cut}");
                sliced_dir.publish_on(
                    ObjectName::new(format!("obj-{next_id}")),
                    ObjectId::new(next_id),
                    pa.node,
                    sliced.incarnation(pa.node),
                );
                naive_dir.publish_on(
                    ObjectName::new(format!("obj-{next_id}")),
                    ObjectId::new(next_id),
                    pb.node,
                    naive.incarnation(pb.node),
                );
            }
        }
    }

    prop_assert_eq!(applied, schedule.len(), "oracle must drain the schedule");
    prop_assert_eq!(driver.pending(), 0, "driver must drain the schedule");
    prop_assert_eq!(sliced.stats(), naive.stats());
    prop_assert_eq!(sliced.failure_epochs(), naive.failure_epochs());
    for i in 0..FLEET {
        let node = NodeId::new(i);
        prop_assert_eq!(sliced.is_alive(node), naive.is_alive(node), "alive[{i}]");
        prop_assert_eq!(
            sliced.incarnation(node),
            naive.incarnation(node),
            "incarnation[{i}]"
        );
    }
    prop_assert_eq!(
        directory_fingerprint(&sliced_dir),
        directory_fingerprint(&naive_dir)
    );
    let da = sliced.importance_density(horizon);
    let db = naive.importance_density(horizon);
    prop_assert!((da - db).abs() < 1e-12, "density diverged: {da} vs {db}");
    Ok(())
}

proptest! {
    /// Event-loop slicing is invisible: advancing the churn driver at
    /// arbitrary cut points (with placements interleaved at every cut)
    /// matches a naive one-pass application of the same schedule exactly —
    /// stats, epochs, membership, incarnations, directory, and density.
    #[test]
    fn sliced_event_loop_matches_naive_application(
        seed in 0u64..10_000,
        shape_centi in 40u64..160,
        cut_offsets in proptest::collection::vec(0u64..200_000, 0..24),
    ) {
        run_slicing_differential(seed, shape_centi, cut_offsets)?;
    }
}

/// Nightly deep fuzz of the slicing differential: `DIFF_CASES=4096`
/// cranks the case count; a no-op when the env var is unset.
#[test]
fn deep_fuzz_churn_differential() {
    let Some(cases) = std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    else {
        return;
    };
    let strategy = (
        0u64..10_000,
        40u64..160,
        proptest::collection::vec(0u64..200_000, 0..24),
    );
    proptest::test_runner::run_cases_n(
        "sliced_event_loop_matches_naive_application",
        cases,
        |rng| {
            let (seed, shape_centi, cut_offsets) = strategy.generate(rng);
            run_slicing_differential(seed, shape_centi, cut_offsets)
        },
    );
}
