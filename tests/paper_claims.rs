//! Integration tests pinning the paper's qualitative claims, each tagged
//! with the section it reproduces. These run the real experiment drivers
//! at reduced horizons.

use temporal_reclaim::analysis::{TimeConstantEstimator, WeightedCdf};
use temporal_reclaim::experiments::lecture::{self, LectureRunConfig};
use temporal_reclaim::experiments::single_class::{self, PolicyChoice, SingleClassConfig};
use temporal_reclaim::workload::{CLASS_STUDENT, CLASS_UNIVERSITY};
use temporal_reclaim::{ByteSize, SimDuration};

const SEED: u64 = 20070625;

fn single_class(
    policy: PolicyChoice,
    capacity_gib: u64,
    days: u64,
) -> single_class::SingleClassResult {
    let mut cfg = SingleClassConfig::paper(SEED, capacity_gib, policy);
    cfg.days = days;
    single_class::run(cfg)
}

/// §5.1: "In a traditional storage system, this space will be fully used
/// up in about 40 to 50 days."
#[test]
fn traditional_storage_fills_in_about_forty_days() {
    let result = single_class(PolicyChoice::NoImportance, 80, 120);
    // The first eviction or rejection marks the disk filling.
    let first_pressure = result
        .evictions
        .first()
        .map(|e| e.evicted_at)
        .into_iter()
        .chain(result.rejections.first().map(|r| r.at))
        .min()
        .expect("pressure must appear within 120 days");
    let day = first_pressure.as_days();
    assert!((30..60).contains(&day), "disk filled on day {day}");
}

/// §5.1.1: "When there is plenty of storage, all these policies perform in
/// a similar fashion" — before the disk fills, nobody rejects or evicts.
#[test]
fn policies_agree_without_pressure() {
    for policy in PolicyChoice::ALL {
        let result = single_class(policy, 80, 25);
        assert_eq!(result.stats.rejections_full, 0, "{policy} rejected early");
        assert_eq!(
            result.stats.evictions_preempted, 0,
            "{policy} evicted early"
        );
    }
}

/// §5.1.1: "The policy without temporal importance gives all stored
/// objects their requested lifetime of 30 days. On the other hand, this
/// policy rejects many more objects than a policy that implements the
/// temporal importance function."
#[test]
fn figure_3_and_4_ordering() {
    let fixed = single_class(PolicyChoice::NoImportance, 80, 400);
    let temporal = single_class(PolicyChoice::TemporalImportance, 80, 400);
    let fifo = single_class(PolicyChoice::Palimpsest, 80, 400);

    // Fig. 4 ordering: no-importance rejects most, temporal much less,
    // palimpsest never.
    assert!(fixed.stats.rejections_full > temporal.stats.rejections_full);
    assert_eq!(fifo.stats.rejections_full, 0);

    // Fig. 3 ordering: no-importance achieves the longest lifetimes
    // (every accepted object gets its full 30 days), temporal gives up
    // some of the wane, palimpsest sits at the bottom under pressure.
    let mean = |r: &single_class::SingleClassResult| r.lifetime_series().summary().unwrap().mean;
    let fixed_mean = mean(&fixed);
    let temporal_mean = mean(&temporal);
    let fifo_mean = mean(&fifo);
    assert!(
        fixed_mean >= temporal_mean,
        "no-importance {fixed_mean:.1} < temporal {temporal_mean:.1}"
    );
    assert!(
        temporal_mean >= fifo_mean,
        "temporal {temporal_mean:.1} < palimpsest {fifo_mean:.1}"
    );
    // Temporal guarantees the 15-day plateau.
    let temporal_min = temporal
        .lifetime_series()
        .values()
        .iter()
        .copied()
        .fold(f64::MAX, f64::min);
    assert!(temporal_min >= 15.0, "plateau violated: {temporal_min:.1}");
}

/// §4.2 "Scalability": adding storage must monotonically help every
/// policy without changing annotations.
#[test]
fn more_storage_never_hurts() {
    for policy in [PolicyChoice::NoImportance, PolicyChoice::TemporalImportance] {
        let small = single_class(policy, 80, 400);
        let large = single_class(policy, 120, 400);
        assert!(
            large.stats.rejections_full <= small.stats.rejections_full,
            "{policy}: rejections rose with capacity"
        );
    }
}

/// §5.1.2: the hour-window time constant "varied considerably", and the
/// variance depends on the arrival rate (heteroscedasticity) — while the
/// month window is far more stable.
#[test]
fn figure_5_time_constant_instability() {
    let result = single_class(PolicyChoice::TemporalImportance, 80, 400);
    let capacity = ByteSize::from_gib(80);
    let hour = TimeConstantEstimator::new(capacity, SimDuration::HOUR)
        .estimate(result.arrivals.iter().copied());
    let month = TimeConstantEstimator::new(capacity, SimDuration::from_days(30))
        .estimate(result.arrivals.iter().copied());
    let cv_hour = hour.coefficient_of_variation().unwrap();
    let cv_month = month.coefficient_of_variation().unwrap();
    assert!(
        cv_hour > 2.0 * cv_month,
        "hour cv {cv_hour:.3} not ≫ month cv {cv_month:.3}"
    );
    // Day-window heteroscedasticity: dispersion depends on the rate.
    let day = TimeConstantEstimator::new(capacity, SimDuration::DAY)
        .estimate(result.arrivals.iter().copied());
    let ratio = day.heteroscedasticity_ratio(4).unwrap();
    assert!(ratio > 2.0, "day-window variance ratio {ratio:.2}");
}

/// §5.1.2 / Figure 7: at the snapshot the paper takes (density ≈ 0.8369),
/// a majority of bytes sit at importance one and objects below the
/// admission threshold cannot be stored.
#[test]
fn figure_7_snapshot_structure() {
    let mut cfg = SingleClassConfig::paper(SEED, 80, PolicyChoice::TemporalImportance);
    cfg.days = 400;
    cfg.snapshot_density = Some(0.8369);
    let result = single_class::run(cfg);
    let snap = result.snapshot.expect("density band must be crossed");

    // Build the CDF exactly as the figure does.
    let pairs: Vec<(f64, f64)> = snap
        .histogram
        .iter()
        .map(|&(imp, bytes)| (imp.value(), bytes.as_bytes() as f64))
        .collect();
    let cdf = WeightedCdf::from_pairs(pairs).unwrap();

    // Paper: "57% of the bytes have storage importance one".
    let at_full = snap.fraction_at_full();
    assert!(
        (0.3..0.95).contains(&at_full),
        "fraction at importance one: {at_full:.2}"
    );
    // Paper: "Objects with importance less than 0.25 cannot be stored" —
    // the minimum stored importance is strictly positive.
    assert!(
        cdf.min_value() > 0.05,
        "min importance {:.3}",
        cdf.min_value()
    );
    // Density ≈ the number the snapshot was taken at.
    assert!((snap.density - 0.8369).abs() < 0.01);
    // And the density is consistent with the CDF's mean importance
    // weighted by used/capacity.
    let mean_importance: f64 = snap
        .histogram
        .iter()
        .map(|&(imp, bytes)| imp.value() * bytes.as_bytes() as f64)
        .sum::<f64>()
        / snap.used.as_bytes() as f64;
    let reconstructed =
        mean_importance * snap.used.as_bytes() as f64 / snap.capacity.as_bytes() as f64;
    assert!((reconstructed - snap.density).abs() < 1e-9);
}

/// §5.2.2: with the two-step calendar lifetimes, university objects beat
/// student objects under pressure; Palimpsest "did not offer any
/// differentiation for the different users".
#[test]
fn figure_9_class_differentiation() {
    let mut cfg = LectureRunConfig::paper(SEED, 80);
    cfg.years = 3;
    let temporal = lecture::run(cfg.clone());
    cfg.palimpsest = true;
    let fifo = lecture::run(cfg);

    let t_uni = temporal
        .mean_lifetime_with_rejections(CLASS_UNIVERSITY)
        .unwrap();
    let t_student = temporal
        .mean_lifetime_with_rejections(CLASS_STUDENT)
        .unwrap();
    assert!(
        t_uni > 2.0 * t_student,
        "uni {t_uni:.0} vs student {t_student:.0}"
    );

    let f_uni = fifo
        .lifetime_series(CLASS_UNIVERSITY)
        .summary()
        .unwrap()
        .mean;
    let f_student = fifo.lifetime_series(CLASS_STUDENT).summary().unwrap().mean;
    let spread = (f_uni - f_student).abs() / f_uni.max(f_student);
    assert!(
        spread < 0.5,
        "palimpsest differentiated: {f_uni:.0} vs {f_student:.0}"
    );
}

/// §5.2.2 / Figure 10: under tremendous pressure (80 GB) university
/// objects are evicted once they wane below ~0.5; easing pressure
/// (120 GB) lets objects live down to lower importance before eviction.
#[test]
fn figure_10_reclamation_importance_shifts_with_pressure() {
    let run_at = |gib: u64| {
        let mut cfg = LectureRunConfig::paper(SEED, gib);
        cfg.years = 4;
        lecture::run(cfg)
    };
    let small = run_at(80);
    let large = run_at(120);
    let mean_imp = |r: &lecture::LectureRunResult| {
        r.reclamation_importance_series(CLASS_UNIVERSITY)
            .summary()
            .unwrap()
            .mean
    };
    let small_mean = mean_imp(&small);
    let large_mean = mean_imp(&large);
    assert!(
        large_mean <= small_mean,
        "120 GiB evicts at higher importance ({large_mean:.2}) than 80 GiB ({small_mean:.2})"
    );
    // Temporal policy never evicts live full-importance objects.
    let max = small
        .reclamation_importance_series(CLASS_UNIVERSITY)
        .values()
        .iter()
        .copied()
        .fold(0.0, f64::max);
    assert!(max < 1.0, "a full-importance object was preempted");
}

/// §5.2.3 / Figure 12: "As the storage pressure eases, more objects are
/// retained and the average importance density becomes lower."
#[test]
fn figure_12_density_falls_with_more_storage() {
    let run_at = |gib: u64| {
        let mut cfg = LectureRunConfig::paper(SEED, gib);
        cfg.years = 3;
        lecture::run(cfg)
    };
    let d80 = run_at(80).density.summary().unwrap().mean;
    let d120 = run_at(120).density.summary().unwrap().mean;
    assert!(
        d120 < d80,
        "density did not fall with more storage: {d80:.3} → {d120:.3}"
    );
}
