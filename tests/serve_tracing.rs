//! Black-box tests for the serve layer's request-scoped tracing and the
//! aggregating `health` verb, through the umbrella crate's public API.
//!
//! The serve crate's unit tests pin the mechanics (stamp arithmetic,
//! queue-depth conservation, histogram feeding); these tests pin the
//! end-to-end contract a client sees: every pipelined submission under
//! concurrent load comes back with non-decreasing stage timestamps and a
//! service-unique id, and once all clients drain, `health` reports empty
//! queues with request counts that add up.
//!
//! Everything tolerates `--features obs-off`: traces are then `None` and
//! the health snapshot carries no latency tables, which is itself part of
//! the contract (the seam compiles out, the verbs stay).

use std::sync::Mutex;

use temporal_reclaim::serve::RequestTrace;
use temporal_reclaim::tempimp::*;

const CLIENTS: u32 = 4;
const OPS_PER_CLIENT: u64 = 500;
const SHARDS: u32 = 4;

fn put(base: u64, i: u64) -> Request {
    Request::Put {
        id: ObjectId::new(base + i),
        bytes: ByteSize::from_mib(1),
        curve: ImportanceCurve::two_step(
            Importance::FULL,
            SimDuration::from_days(15),
            SimDuration::from_days(15),
        ),
        class: Default::default(),
    }
}

/// Drives one client through a pipelined put/get/fan-out mix, collecting
/// every returned trace.
fn drive(client: &mut ServeClient, index: u32) -> Vec<RequestTrace> {
    let base = u64::from(index) << 32;
    let mut traces = Vec::new();
    let mut window = Vec::new();
    for i in 0..OPS_PER_CLIENT {
        let at = SimTime::from_minutes(i * 30);
        let request = match i % 8 {
            0..=4 => put(base, i),
            5 | 6 => Request::Get {
                id: ObjectId::new(base + i.saturating_sub(3)),
            },
            _ => Request::Stats,
        };
        window.push(client.submit(at, request).expect("live service accepts"));
        if window.len() >= 32 {
            for pending in window.drain(..) {
                let (_, trace) = pending.wait_traced();
                traces.extend(trace);
            }
        }
    }
    for pending in window {
        let (_, trace) = pending.wait_traced();
        traces.extend(trace);
    }
    traces
}

#[test]
fn stage_stamps_are_monotone_and_ids_unique_under_concurrency() {
    let service = Tempimpd::builder().shards(SHARDS).spawn();
    let prototype = service.client();

    let collected: Mutex<Vec<RequestTrace>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let mut client = prototype.clone();
            let collected = &collected;
            scope.spawn(move |_| {
                let traces = drive(&mut client, c);
                collected.lock().unwrap().extend(traces);
            });
        }
    })
    .expect("client scope");
    drop(prototype);
    service.shutdown().expect_clean();

    let traces = collected.into_inner().unwrap();
    if cfg!(feature = "obs-off") {
        assert!(
            traces.is_empty(),
            "obs-off submissions must not carry traces"
        );
        return;
    }

    let expected = u64::from(CLIENTS) * OPS_PER_CLIENT;
    assert_eq!(traces.len() as u64, expected, "every submission is traced");
    let mut ids: Vec<u64> = traces.iter().map(|t| t.id.raw()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(
        ids.len() as u64,
        expected,
        "request ids are service-unique across clients and shards"
    );
    for trace in &traces {
        // The whole pipeline shares one clock origin, so the stages of
        // any request — whichever shard served it — are comparable and
        // must be non-decreasing in submission order.
        assert!(
            trace.enqueued_ns <= trace.dequeued_ns
                && trace.dequeued_ns <= trace.applied_ns
                && trace.applied_ns <= trace.replied_ns,
            "stage stamps regressed: {trace:?}"
        );
        assert_eq!(
            trace.queue_wait_ns() + trace.service_ns(),
            trace.total_ns(),
            "queue-wait and service partition the total: {trace:?}"
        );
    }
}

#[test]
fn drained_service_reports_empty_queues_and_consistent_counts() {
    let service = Tempimpd::builder().shards(SHARDS).spawn();
    let mut client = service.client();

    for i in 0..200u64 {
        let response = client.call(SimTime::from_minutes(i), put(0, i));
        assert!(matches!(response, Response::Put(Ok(_))));
    }

    let health = client
        .health(SimTime::from_minutes(200))
        .expect("live service answers health");
    assert_eq!(health.shards.len() as u32, SHARDS);
    // Blocking calls: nothing can still be queued when health answers.
    assert_eq!(health.total_queue_depth(), 0, "all queues drained");
    // 200 puts + the health fan-out itself, one leg per shard.
    assert_eq!(health.total_requests(), 200 + u64::from(SHARDS));
    let residents: u64 = health.shards.iter().map(|s| s.residents).sum();
    assert_eq!(residents, 200, "every put is resident somewhere");
    for shard in &health.shards {
        assert_eq!(shard.rejected, 0, "nothing was rejected");
        assert!(shard.batches <= shard.requests);
        if cfg!(feature = "obs-off") {
            assert!(
                shard.latencies.is_empty(),
                "obs-off health carries no latency tables"
            );
        }
    }

    drop(client);
    service.shutdown().expect_clean();
}
