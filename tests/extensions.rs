//! Integration tests for the extension subsystems: trace record/replay,
//! the concurrent placement front-end, and the calendar's annotation
//! invariants.
use proptest::prelude::*;
use temporal_reclaim::core::{ImportanceCurve, ObjectIdGen, ObjectSpec, StorageUnit};
use temporal_reclaim::sim::rng;
use temporal_reclaim::workload::calendar::{AcademicCalendar, Creator};
use temporal_reclaim::workload::lecture::{generate, LectureConfig};
use temporal_reclaim::workload::trace;
use temporal_reclaim::{ByteSize, SimTime};
/// Replaying a recorded trace through the engine produces the same
/// outcome as running the generator directly.
#[test]
fn trace_replay_is_bit_identical() {
    let arrivals = generate(&LectureConfig::default(), 2);
    // Record and replay.
    let mut buffer = Vec::new();
    trace::write(&mut buffer, &arrivals).unwrap();
    let replayed = trace::read(buffer.as_slice()).unwrap();
    assert_eq!(arrivals, replayed);
    // Drive two identical units from the two streams.
    let run = |stream: &[temporal_reclaim::workload::Arrival]| {
        let mut unit = StorageUnit::new(ByteSize::from_gib(40));
        let mut ids = ObjectIdGen::new();
        for arrival in stream {
            let spec = ObjectSpec::new(ids.next_id(), arrival.size, arrival.curve.clone())
                .with_class(arrival.class);
            let _ = unit.store(spec, arrival.at);
        }
        (
            unit.stats().stores_accepted,
            unit.stats().rejections_full,
            unit.stats().evictions_preempted,
            unit.used(),
        )
    };
    assert_eq!(run(&arrivals), run(&replayed));
}
/// The concurrent cluster under heavy multi-thread churn never violates
/// per-node capacity and never loses accounting.
#[test]
fn shared_cluster_preserves_capacity_invariants_under_churn() {
    let mut rand = rng::seeded(77);
    let cluster = temporal_reclaim::besteffs::Besteffs::builder(30, ByteSize::from_mib(50))
        .build_shared(&mut rand);
    crossbeam::thread::scope(|scope| {
        for t in 0..6 {
            let cluster = &cluster;
            scope.spawn(move |_| {
                let mut rand = rng::stream(123, &format!("churn-{t}"));
                for i in 0..200u64 {
                    let id = t as u64 * 100_000 + i;
                    let importance = 0.1 + (i % 9) as f64 * 0.1;
                    let spec = ObjectSpec::new(
                        temporal_reclaim::ObjectId::new(id),
                        ByteSize::from_mib(5 + i % 13),
                        ImportanceCurve::Fixed {
                            importance: temporal_reclaim::Importance::new_clamped(importance),
                            expiry: sim_core_duration_days(30),
                        },
                    );
                    let _ = cluster.place(spec, SimTime::ZERO, &mut rand);
                }
            });
        }
    })
    .unwrap();
    // Every node's invariant held.
    for node in 0..cluster.len() {
        cluster.with_node(temporal_reclaim::besteffs::NodeId::new(node), |unit| {
            assert!(unit.used() <= unit.capacity());
            let resident: ByteSize = unit.iter().map(|o| o.size()).sum();
            assert_eq!(resident, unit.used());
        });
    }
    let stats = cluster.stats();
    assert_eq!(stats.placed() + stats.rejected(), 6 * 200);
}
fn sim_core_duration_days(days: u64) -> temporal_reclaim::SimDuration {
    temporal_reclaim::SimDuration::from_days(days)
}
proptest! {
    /// Calendar invariant: for any in-term day, the annotation's plateau
    /// ends exactly at the term's end day and the curve validates.
    #[test]
    fn calendar_annotations_are_always_consistent(day in 0u64..(4 * 365)) {
        let calendar = AcademicCalendar::paper();
        let at = SimTime::from_days(day);
        match calendar.term_on(at) {
            Some(term) => {
                for creator in [Creator::University, Creator::Student] {
                    let curve = calendar
                        .lifetime_for(at, creator)
                        .expect("in-term day has a lifetime");
                    // Plateau ends at the term's end day.
                    let persist = calendar.persist_for(at).unwrap();
                    prop_assert_eq!(
                        (at + persist).day_of_year(),
                        term.end_day() % 365
                    );
                    // Curves are monotone by construction; expiry after persist.
                    let expiry = curve.expiry().expect("two-step curves expire");
                    prop_assert!(expiry >= persist);
                }
            }
            None => {
                prop_assert!(calendar.lifetime_for(at, Creator::University).is_none());
                prop_assert!(calendar.persist_for(at).is_none());
            }
        }
    }
}
