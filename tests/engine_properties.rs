//! Property-based tests on the core invariants of the temporal-importance
//! engine, driven through the public API of the umbrella crate.

use proptest::prelude::*;
use temporal_reclaim::core::{
    EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectSpec, PiecewiseCurve, StorageUnit,
    StoreError,
};
use temporal_reclaim::{ByteSize, SimDuration, SimTime};

fn importance_strategy() -> impl Strategy<Value = Importance> {
    (0.0f64..=1.0).prop_map(Importance::new_clamped)
}

fn duration_strategy() -> impl Strategy<Value = SimDuration> {
    (0u64..5_000).prop_map(SimDuration::from_days)
}

fn curve_strategy() -> impl Strategy<Value = ImportanceCurve> {
    prop_oneof![
        Just(ImportanceCurve::Persistent),
        Just(ImportanceCurve::Ephemeral),
        (importance_strategy(), duration_strategy())
            .prop_map(|(importance, expiry)| ImportanceCurve::Fixed { importance, expiry }),
        (
            importance_strategy(),
            duration_strategy(),
            duration_strategy()
        )
            .prop_map(|(importance, persist, wane)| ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            }),
        (
            importance_strategy(),
            duration_strategy(),
            duration_strategy(),
            1u64..500
        )
            .prop_map(|(importance, persist, wane, half_life)| {
                ImportanceCurve::exp_decay(
                    importance,
                    persist,
                    wane,
                    SimDuration::from_days(half_life),
                )
                .expect("positive half-life")
            }),
    ]
}

proptest! {
    /// Every curve is monotonically non-increasing and valued in [0, 1].
    #[test]
    fn curves_are_monotone_and_bounded(
        curve in curve_strategy(),
        ages in proptest::collection::vec(0u64..10_000, 2..40),
    ) {
        let mut sorted = ages.clone();
        sorted.sort_unstable();
        let mut prev = Importance::FULL;
        let mut first = true;
        for age_days in sorted {
            let imp = curve.importance_at(SimDuration::from_days(age_days));
            prop_assert!((0.0..=1.0).contains(&imp.value()));
            if !first {
                prop_assert!(imp <= prev, "importance increased with age");
            }
            prev = imp;
            first = false;
        }
    }

    /// After `expiry()`, the importance is exactly zero.
    #[test]
    fn expiry_means_zero(curve in curve_strategy(), extra in 0u64..1_000) {
        if let Some(expiry) = curve.expiry() {
            let after = expiry + SimDuration::from_days(extra);
            prop_assert_eq!(curve.importance_at(after), Importance::ZERO);
            prop_assert!(curve.is_expired(after));
        }
    }

    /// Piecewise curves built from sorted non-increasing points validate,
    /// interpolate within bounds, and respect monotonicity.
    #[test]
    fn piecewise_curves_validate_and_interpolate(
        raw in proptest::collection::vec((0u64..3_000, 0.0f64..=1.0), 1..10),
        probe in 0u64..4_000,
    ) {
        // Sort ages ascending & dedup, sort importances descending, zip.
        let mut ages: Vec<u64> = raw.iter().map(|(a, _)| *a).collect();
        ages.sort_unstable();
        ages.dedup();
        let mut imps: Vec<f64> = raw.iter().take(ages.len()).map(|(_, i)| *i).collect();
        imps.sort_by(|a, b| b.total_cmp(a));
        let mut points: Vec<(SimDuration, Importance)> = ages
            .into_iter()
            .zip(imps)
            .map(|(a, i)| (SimDuration::from_days(a), Importance::new_clamped(i)))
            .collect();
        // Force the origin.
        if points[0].0 != SimDuration::ZERO {
            let first_imp = points[0].1;
            points.insert(0, (SimDuration::ZERO, first_imp));
        }
        let curve = PiecewiseCurve::new(points).expect("constructed valid");
        let v = curve.importance_at(SimDuration::from_days(probe));
        prop_assert!((0.0..=1.0).contains(&v.value()));
    }

    /// Engine invariant: used + free == capacity, and used equals the sum
    /// of resident object sizes, across arbitrary store sequences.
    #[test]
    fn accounting_is_exact_under_churn(
        ops in proptest::collection::vec(
            (1u64..200, 0.0f64..=1.0, 0u64..120, 0u64..400),
            1..80,
        ),
    ) {
        let capacity = ByteSize::from_mib(1_000);
        let mut unit = StorageUnit::new(capacity);
        for (i, (mib, importance, expiry, at_day)) in ops.into_iter().enumerate() {
            let spec = ObjectSpec::new(
                ObjectId::new(i as u64),
                ByteSize::from_mib(mib),
                ImportanceCurve::Fixed {
                    importance: Importance::new_clamped(importance),
                    expiry: SimDuration::from_days(expiry),
                },
            );
            let _ = unit.store(spec, SimTime::from_days(at_day));
            prop_assert_eq!(unit.used() + unit.free(), capacity);
            let resident: ByteSize = unit.iter().map(|o| o.size()).sum();
            prop_assert_eq!(resident, unit.used());
            let d = unit.importance_density(SimTime::from_days(at_day));
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }

    /// The strict preemption rule: no eviction ever removes an object
    /// whose current importance is >= the incoming object's importance
    /// (unless the victim had expired).
    #[test]
    fn preemption_is_strict(
        ops in proptest::collection::vec((1u64..300, 0.0f64..=1.0), 1..60),
    ) {
        let mut unit = StorageUnit::new(ByteSize::from_mib(1_000));
        let now = SimTime::from_days(1);
        for (i, (mib, importance)) in ops.into_iter().enumerate() {
            let incoming = Importance::new_clamped(importance);
            let spec = ObjectSpec::new(
                ObjectId::new(i as u64),
                ByteSize::from_mib(mib),
                ImportanceCurve::Fixed {
                    importance: incoming,
                    expiry: SimDuration::from_days(10_000),
                },
            );
            match unit.store(spec, now) {
                Ok(outcome) => {
                    for victim in &outcome.evicted {
                        prop_assert!(
                            victim.importance_at_eviction < incoming,
                            "victim at {} >= incoming {}",
                            victim.importance_at_eviction,
                            incoming
                        );
                    }
                }
                Err(StoreError::Full { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error {e}"),
            }
        }
    }

    /// FIFO (Palimpsest) never reports Full for objects that fit in the
    /// unit at all, and always evicts in arrival order.
    #[test]
    fn fifo_never_full_and_evicts_oldest(
        ops in proptest::collection::vec(1u64..500, 1..60),
    ) {
        let mut unit = StorageUnit::builder(ByteSize::from_mib(1_000))
            .policy(EvictionPolicy::Fifo)
            .build();
        let mut day = 0u64;
        for (i, mib) in ops.into_iter().enumerate() {
            day += 1;
            let spec = ObjectSpec::new(
                ObjectId::new(i as u64),
                ByteSize::from_mib(mib),
                ImportanceCurve::fixed_lifetime(SimDuration::from_days(30)),
            );
            let outcome = unit
                .store(spec, SimTime::from_days(day))
                .expect("fifo admits everything that fits");
            // Victims are the oldest residents: their arrivals must all
            // precede every remaining resident's arrival.
            if let (Some(last_victim), Some(oldest_resident)) = (
                outcome.evicted.last(),
                unit.iter().map(|o| o.arrival()).min(),
            ) {
                prop_assert!(last_victim.arrival <= oldest_resident);
            }
        }
        prop_assert_eq!(unit.stats().rejections_full, 0);
    }

    /// peek_admission never lies: if it admits, the subsequent store
    /// succeeds with the same highest-preempted importance; if it reports
    /// Full, the store fails.
    #[test]
    fn peek_matches_store(
        fill in proptest::collection::vec((1u64..100, 0.0f64..=1.0), 1..40),
        probe_mib in 1u64..200,
        probe_importance in 0.0f64..=1.0,
    ) {
        let mut unit = StorageUnit::new(ByteSize::from_mib(500));
        let now = SimTime::from_days(1);
        for (i, (mib, importance)) in fill.into_iter().enumerate() {
            let _ = unit.store(
                ObjectSpec::new(
                    ObjectId::new(i as u64),
                    ByteSize::from_mib(mib),
                    ImportanceCurve::Fixed {
                        importance: Importance::new_clamped(importance),
                        expiry: SimDuration::from_days(10_000),
                    },
                ),
                now,
            );
        }
        let incoming = Importance::new_clamped(probe_importance);
        let peek = unit.peek_admission(ByteSize::from_mib(probe_mib), incoming, now);
        let spec = ObjectSpec::new(
            ObjectId::new(999_999),
            ByteSize::from_mib(probe_mib),
            ImportanceCurve::Fixed {
                importance: incoming,
                expiry: SimDuration::from_days(10_000),
            },
        );
        let stored = unit.store(spec, now);
        match (peek.placement_score(), stored) {
            (Some(score), Ok(outcome)) => {
                prop_assert_eq!(outcome.placement_score(), score);
            }
            (None, Err(_)) => {}
            (peeked, actual) => prop_assert!(
                false,
                "peek said {peeked:?} but store said {actual:?}"
            ),
        }
    }
}
