//! Smoke tests for every figure/table report: each regenerates at a quick
//! horizon and must contain the structural elements the paper's artifact
//! has. The full-horizon output is produced by `cargo run -p bench-harness
//! --bin repro` and recorded in EXPERIMENTS.md.

use temporal_reclaim::experiments::figures;

const SEED: u64 = 20070625;

#[test]
fn fig2_report() {
    let report = figures::fig2(SEED);
    assert_eq!(report.tables[0].1.len(), 12, "one row per month");
    assert!(report.to_string().contains("0.5 → 0.7 → 1.0 → 1.3"));
}

#[test]
fn fig3_report() {
    let report = figures::fig3(SEED, 200);
    assert_eq!(
        report.tables.len(),
        4,
        "80 and 120 GiB panels, each with a trend and a distribution table"
    );
    let text = report.to_string();
    assert!(text.contains("no-importance"));
    assert!(text.contains("temporal-importance"));
    assert!(text.contains("palimpsest"));
}

#[test]
fn fig4_report() {
    let report = figures::fig4(SEED, 200);
    let text = report.to_string();
    assert!(
        text.contains("palimpsest=0"),
        "fifo must show zero rejections"
    );
}

#[test]
fn fig5_report() {
    let report = figures::fig5(SEED, 200);
    let text = report.to_string();
    for window in ["hour", "day", "month"] {
        assert!(text.contains(window), "missing {window} window row");
    }
    assert!(text.contains("heteroscedasticity"));
}

#[test]
fn fig6_report() {
    let report = figures::fig6(SEED, 200);
    assert_eq!(report.tables.len(), 2);
    assert!(report.to_string().contains("peak density"));
}

#[test]
fn fig7_report() {
    let report = figures::fig7(SEED, 365);
    let text = report.to_string();
    assert!(
        text.contains("snapshot density: 0.8"),
        "snapshot missing: {text}"
    );
    assert!(text.contains("importance 1.0"));
}

#[test]
fn table1_report() {
    let report = figures::table1();
    let text = report.to_string();
    for needle in [
        "spring", "summer", "fall", "8", "150", "248", "730", "365", "850",
    ] {
        assert!(text.contains(needle), "Table 1 missing {needle}");
    }
}

#[test]
fn fig8_report() {
    let report = figures::fig8(SEED);
    assert_eq!(report.tables[0].1.len(), 20, "20 weeks");
}

#[test]
fn fig9_report() {
    let report = figures::fig9(SEED, 2);
    let text = report.to_string();
    assert!(text.contains("university"));
    assert!(text.contains("student"));
}

#[test]
fn fig10_report() {
    let report = figures::fig10(SEED, 2);
    let text = report.to_string();
    assert!(
        text.contains("palimpsest"),
        "needs the FIFO comparison panel"
    );
    assert!(text.contains("projected importance"));
}

#[test]
fn fig11_report() {
    let report = figures::fig11(SEED, 2);
    assert_eq!(report.tables.len(), 2);
}

#[test]
fn fig12_report() {
    let report = figures::fig12(SEED, 2);
    assert!(report.to_string().contains("density mean"));
}

#[test]
fn sec53_report() {
    let report = figures::sec53(SEED, 1, 100);
    let text = report.to_string();
    assert!(text.contains("80 GiB"));
    assert!(text.contains("120 GiB"));
    assert!(text.contains("pressure"));
}

#[test]
fn ablation_reports() {
    let decay = figures::ablate_decay(SEED, 200);
    assert_eq!(decay.tables[0].1.len(), 3, "three wane shapes");
    let placement = figures::ablate_placement(SEED);
    assert_eq!(placement.tables[0].1.len(), 6, "six sweep points");
}

#[test]
fn sec6_sensor_report() {
    let report = figures::sec6_sensor(SEED);
    let text = report.to_string();
    assert!(text.contains("steady"));
    assert!(text.contains("outage"));
    assert!(text.contains("zero unprocessed captures"));
}

#[test]
fn fairness_report() {
    let report = figures::fairness(SEED);
    assert_eq!(report.tables[0].1.len(), 3, "three user rows");
    assert!(report.to_string().contains("weighted"));
}

#[test]
fn advisor_report() {
    let report = figures::advisor(SEED, 365);
    let text = report.to_string();
    assert!(text.contains("admission threshold"));
    assert!(text.contains("plateau"));
}

#[test]
fn mixed_apps_report() {
    let report = figures::mixed_apps(SEED, 200);
    let text = report.to_string();
    for app in ["archive", "backup", "cache"] {
        assert!(text.contains(app), "missing {app}");
    }
}

#[test]
fn predictability_report() {
    let report = figures::predictability(SEED, 365);
    let text = report.to_string();
    assert!(text.contains("oversleep"));
    assert!(text.contains("hour"));
    assert!(text.contains("month"));
}
