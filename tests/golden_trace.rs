//! Golden trace: the engine's structured event stream is byte-stable.
//!
//! The observability contract (DESIGN.md §3.3) promises that a
//! [`TraceSink`] attached to a seeded simulation produces a *byte
//! identical* JSONL stream on every run, on every platform, in every
//! build profile — events are keyed by simulated time (never wall-clock)
//! and carry only integer fields. This test pins that contract two ways:
//! two in-process runs must agree with each other, and both must agree
//! with the committed `tests/golden/engine_trace.jsonl`.
//!
//! Regenerate the golden file (only after an intentional trace change)
//! with `BLESS_GOLDEN_TRACE=1 cargo test --test golden_trace`.

#![cfg(not(feature = "obs-off"))]

use std::sync::Arc;

use rand::Rng;
use temporal_reclaim::tempimp::*;

const SEED: u64 = 4242;
const RESIDENTS: u64 = 1_000;
const CHURN_STORES: u64 = 256;

fn mixed_spec(rng: &mut impl Rng, id: u64) -> ObjectSpec {
    let mib = rng.gen_range(1..=4);
    let curve = match id % 3 {
        0 => ImportanceCurve::two_step(
            Importance::new(rng.gen_range(0.2..=1.0)).unwrap(),
            SimDuration::from_days(rng.gen_range(5..40)),
            SimDuration::from_days(rng.gen_range(5..40)),
        ),
        1 => ImportanceCurve::Fixed {
            importance: Importance::new(rng.gen_range(0.1..0.9)).unwrap(),
            expiry: SimDuration::from_days(rng.gen_range(10..90)),
        },
        _ => ImportanceCurve::fixed_lifetime(SimDuration::from_days(rng.gen_range(20..60))),
    };
    ObjectSpec::new(ObjectId::new(id), ByteSize::from_mib(mib), curve)
}

/// Fills a unit to steady state, then traces a burst of churn stores.
/// The sink attaches only after the fill so the golden file stays small.
fn trace_run() -> String {
    let mut rand = rng::seeded(SEED);
    let mut unit = StorageUnit::builder(ByteSize::from_mib(2_000))
        .recording(false)
        .build();
    for id in 0..RESIDENTS {
        let _ = unit.store(mixed_spec(&mut rand, id), SimTime::ZERO);
    }

    let sink = Arc::new(TraceSink::new());
    unit.set_observer(Obs::attached(sink.clone()));
    for k in 0..CHURN_STORES {
        let now = SimTime::from_days(30 + k / 8);
        unit.advance(now);
        let _ = unit.store(mixed_spec(&mut rand, RESIDENTS + k), now);
    }
    sink.to_jsonl()
}

#[test]
fn engine_trace_is_byte_reproducible() {
    let first = trace_run();
    let second = trace_run();
    assert!(!first.is_empty(), "the churn burst must emit events");
    assert_eq!(first, second, "two identical runs must trace identically");

    if std::env::var_os("BLESS_GOLDEN_TRACE").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/engine_trace.jsonl"
            ),
            &first,
        )
        .expect("write golden trace");
        return;
    }
    let golden = include_str!("golden/engine_trace.jsonl");
    assert_eq!(
        first, golden,
        "trace diverged from tests/golden/engine_trace.jsonl; if the \
         change is intentional, re-bless with BLESS_GOLDEN_TRACE=1"
    );
}

#[test]
fn trace_lines_are_valid_shape() {
    let trace = trace_run();
    for line in trace.lines() {
        assert!(line.starts_with("{\"t\":"), "line {line:?}");
        assert!(line.ends_with("}}"), "line {line:?}");
        assert!(
            line.contains("\"kind\":\"engine.store\"")
                || line.contains("\"kind\":\"engine.reject\""),
            "unexpected event kind in {line:?}"
        );
    }
}
