//! Golden trace: the engine's structured event stream is byte-stable.
//!
//! The observability contract (DESIGN.md §3.3) promises that a
//! [`TraceSink`] attached to a seeded simulation produces a *byte
//! identical* JSONL stream on every run, on every platform, in every
//! build profile — events are keyed by simulated time (never wall-clock)
//! and carry only integer fields. This test pins that contract two ways:
//! two in-process runs must agree with each other, and both must agree
//! with the committed `tests/golden/engine_trace.jsonl`.
//!
//! The workload itself lives in [`bench_harness::golden`] so the
//! `tempimp-obs golden` subcommand replays the exact same run; on a
//! mismatch this test prints the first divergence through
//! [`obs::tracefile`] instead of dumping two multi-kilobyte strings.
//!
//! Regenerate the golden file (only after an intentional trace change)
//! with `BLESS_GOLDEN_TRACE=1 cargo test --test golden_trace`.
//!
//! [`TraceSink`]: obs::TraceSink

#![cfg(not(feature = "obs-off"))]

use bench_harness::golden::trace_run;
use obs::tracefile;

/// Renders the first divergence between two traces, self-serve style:
/// the failing assertion's message tells the reader exactly which event
/// changed and how, plus the one command that re-blesses the golden.
fn explain_divergence(current: &str, golden: &str) -> String {
    match tracefile::first_divergence(current, golden) {
        Some(divergence) => format!("{divergence}"),
        None => "traces are identical".to_string(),
    }
}

#[test]
fn engine_trace_is_byte_reproducible() {
    let first = trace_run();
    let second = trace_run();
    assert!(!first.is_empty(), "the churn burst must emit events");
    assert_eq!(first, second, "two identical runs must trace identically");

    if std::env::var_os("BLESS_GOLDEN_TRACE").is_some() {
        std::fs::write(
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/tests/golden/engine_trace.jsonl"
            ),
            &first,
        )
        .expect("write golden trace");
        return;
    }
    let golden = include_str!("golden/engine_trace.jsonl");
    assert!(
        first == golden,
        "trace diverged from tests/golden/engine_trace.jsonl\n{}\nif the \
         change is intentional, re-bless with:\n    BLESS_GOLDEN_TRACE=1 \
         cargo test --test golden_trace",
        explain_divergence(&first, golden),
    );
}

#[test]
fn trace_lines_are_valid_shape() {
    let trace = trace_run();
    let events = tracefile::parse_jsonl(&trace)
        .unwrap_or_else(|(line, err)| panic!("unparseable trace line {line}: {err}"));
    assert!(!events.is_empty());
    let known = [
        "engine.store",
        "engine.reject",
        "engine.breakpoint",
        "engine.evict",
    ];
    for event in &events {
        assert!(
            known.contains(&event.kind.as_str()),
            "unexpected event kind in {event}"
        );
    }
    // The churn burst must keep exercising the engine's main kinds — a
    // golden file that stops covering one of them is a regression too.
    // (`engine.reject` stays *allowed* but the preemptive policy never
    // rejects under this workload, so presence isn't required.)
    let stats = tracefile::stats(&events);
    for kind in ["engine.store", "engine.breakpoint", "engine.evict"] {
        assert!(stats.contains_key(kind), "no {kind} events in the trace");
    }
}
