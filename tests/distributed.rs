//! Integration tests of the Besteffs distributed layer: §5.3 placement at
//! small scale, versioned directories, and failure injection mid-run.

use temporal_reclaim::besteffs::{
    Besteffs, Directory, NodeId, ObjectName, PlacementConfig, PlacementError, Version,
};
use temporal_reclaim::core::{Importance, ImportanceCurve, ObjectIdGen, ObjectSpec};
use temporal_reclaim::experiments::university::{self, UniversityRunConfig};
use temporal_reclaim::sim::rng;
use temporal_reclaim::{ByteSize, SimDuration, SimTime};

const SEED: u64 = 20070625;

fn two_step_spec(ids: &mut ObjectIdGen, mib: u64, importance: f64) -> ObjectSpec {
    ObjectSpec::new(
        ids.next_id(),
        ByteSize::from_mib(mib),
        ImportanceCurve::two_step(
            Importance::new_clamped(importance),
            SimDuration::from_days(30),
            SimDuration::from_days(30),
        ),
    )
}

/// §5.3: the cluster keeps accepting high-importance objects long after
/// low-importance ones start bouncing — the "full" boundary is an
/// importance level, not a byte count.
#[test]
fn cluster_fullness_is_importance_relative() {
    let mut rand = rng::seeded(SEED);
    let mut cluster = Besteffs::builder(30, ByteSize::from_gib(1)).build(&mut rand);
    let mut ids = ObjectIdGen::new();

    // Saturate with mid-importance data.
    let mut mid_rejected = false;
    for _ in 0..2_000 {
        match cluster.place(two_step_spec(&mut ids, 200, 0.5), SimTime::ZERO, &mut rand) {
            Ok(_) => {}
            Err(PlacementError::ClusterFull { .. }) => {
                mid_rejected = true;
                break;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(mid_rejected, "cluster never filled for 0.5-importance data");

    // Full-importance objects still get in.
    let placed = cluster
        .place(two_step_spec(&mut ids, 200, 1.0), SimTime::ZERO, &mut rand)
        .expect("high importance must still be storable");
    assert!(!placed.outcome.evicted.is_empty());

    // Lower importance (0.25 < resident 0.5) stays out.
    let err = cluster
        .place(two_step_spec(&mut ids, 200, 0.25), SimTime::ZERO, &mut rand)
        .unwrap_err();
    assert!(matches!(err, PlacementError::ClusterFull { .. }));
}

/// The placement score reported to callers matches what actually happened
/// on the chosen unit.
#[test]
fn placement_score_matches_eviction_outcome() {
    let mut rand = rng::seeded(SEED + 1);
    let mut cluster = Besteffs::builder(10, ByteSize::from_mib(500))
        .placement(PlacementConfig {
            candidates_per_try: 5,
            max_tries: 2,
            walk_steps: 6,
        })
        .build(&mut rand);
    let mut ids = ObjectIdGen::new();
    for _ in 0..60 {
        let _ = cluster.place(two_step_spec(&mut ids, 100, 0.4), SimTime::ZERO, &mut rand);
    }
    for _ in 0..10 {
        if let Ok(placed) =
            cluster.place(two_step_spec(&mut ids, 100, 0.9), SimTime::ZERO, &mut rand)
        {
            let reported = placed.outcome.placement_score();
            for victim in &placed.outcome.evicted {
                assert!(victim.importance_at_eviction <= reported);
            }
        }
    }
}

/// Failure injection mid-run: losing nodes loses exactly their objects,
/// the directory drops dangling versions, and placement keeps working.
#[test]
fn node_failures_mid_run() {
    let mut rand = rng::seeded(SEED + 2);
    let mut cluster = Besteffs::builder(20, ByteSize::from_gib(1)).build(&mut rand);
    let mut ids = ObjectIdGen::new();
    let mut directory = Directory::new();

    // Publish 40 named objects.
    for i in 0..40 {
        let spec = two_step_spec(&mut ids, 50, 1.0);
        let object = spec.id();
        let placed = cluster.place(spec, SimTime::ZERO, &mut rand).unwrap();
        let version =
            directory.publish(ObjectName::new(format!("lecture-{i}")), object, placed.node);
        assert_eq!(version, Version::FIRST);
    }
    assert_eq!(directory.len(), 40);

    // Kill a quarter of the cluster; the purging path drops the dangling
    // directory versions in the same step.
    let mut lost_total = 0;
    for node in 0..5 {
        lost_total += cluster.fail_node_purging(NodeId::new(node), SimTime::ZERO, &mut directory);
    }
    assert_eq!(cluster.stats().objects_lost, lost_total);
    assert_eq!(cluster.stats().directory_entries_purged, lost_total);
    assert_eq!(cluster.live_nodes(), 15);
    assert_eq!(directory.len() as u64, 40 - lost_total);

    // Survivors are still locatable and consistent with the directory.
    for name in directory.names() {
        let entry = directory.latest(name).unwrap();
        assert_eq!(cluster.locate(entry.object), Some(entry.node));
    }

    // Re-publishing a lost lecture creates version 2 on a live node.
    let spec = two_step_spec(&mut ids, 50, 1.0);
    let object = spec.id();
    let placed = cluster
        .place(spec, SimTime::from_days(1), &mut rand)
        .unwrap();
    assert!(cluster.is_alive(placed.node));
    let name = ObjectName::new("lecture-0");
    directory.publish(name.clone(), object, placed.node);
    assert!(directory.version_count(&name) >= 1);
}

/// A miniature §5.3 run end-to-end through the experiment driver:
/// pressure, class differentiation, and density all behave.
#[test]
fn university_mini_run_end_to_end() {
    let mut cfg = UniversityRunConfig::paper(SEED, 80, 60);
    cfg.years = 2;
    let result = university::run(cfg);
    assert!(result.pressure() > 1.0, "pressure {:.2}", result.pressure());
    assert!(result.university.acceptance() > result.student.acceptance());
    assert!(result.cluster_stats.placed > 0);
    assert!(result
        .density
        .values()
        .iter()
        .all(|v| (0.0..=1.0).contains(v)));
    // Offered = placed + rejected, per class.
    for class in [&result.university, &result.student] {
        assert_eq!(class.offered, class.placed + class.rejected);
    }
}

/// Determinism: the same seed reproduces the same cluster behaviour.
#[test]
fn distributed_runs_are_deterministic() {
    let run = || {
        let mut cfg = UniversityRunConfig::paper(SEED, 80, 100);
        cfg.years = 1;
        let r = university::run(cfg);
        (
            r.university.placed,
            r.student.placed,
            r.cluster_stats.rejected,
        )
    };
    assert_eq!(run(), run());
}
