//! Property tests for the tifs namespace: the directory tree and the
//! storage unit must agree after any operation sequence, including
//! reclamation races between files.

use proptest::prelude::*;
use temporal_reclaim::tifs::{EntryKind, FsError, TiFs};
use temporal_reclaim::{ByteSize, Importance, ImportanceCurve, SimDuration, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Create { name: u8, kib: u64, importance: f64 },
    Remove { name: u8 },
    Read { name: u8 },
    Reclaim,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 1u64..300, 0.0f64..=1.0).prop_map(|(name, kib, importance)| Op::Create {
            name,
            kib,
            importance
        }),
        (0u8..8).prop_map(|name| Op::Remove { name }),
        (0u8..8).prop_map(|name| Op::Read { name }),
        Just(Op::Reclaim),
    ]
}

fn path_for(name: u8) -> String {
    format!("/files/f{name}")
}

proptest! {
    /// After any operation sequence: every listed file is readable, its
    /// stat matches its contents, the unit's used bytes equal the sum of
    /// listed file sizes, and no phantom entries survive reclamation.
    #[test]
    fn namespace_and_storage_agree(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut fs = TiFs::new(ByteSize::from_mib(1));
        fs.mkdir_all("/files", SimTime::ZERO).unwrap();
        let mut day = 0u64;

        for op in ops {
            day += 1;
            let now = SimTime::from_days(day);
            match op {
                Op::Create { name, kib, importance } => {
                    let curve = ImportanceCurve::Fixed {
                        importance: Importance::new_clamped(importance),
                        expiry: SimDuration::from_days(30),
                    };
                    let result = fs.create(
                        &path_for(name),
                        vec![name; (kib * 1024) as usize],
                        curve,
                        now,
                    );
                    match result {
                        Ok(_) => {}
                        Err(FsError::AlreadyExists { .. }) => {}
                        Err(FsError::Storage(_)) => {}
                        Err(e) => prop_assert!(false, "unexpected create error {e}"),
                    }
                }
                Op::Remove { name } => {
                    match fs.remove(&path_for(name), now) {
                        Ok(()) | Err(FsError::NotFound { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected remove error {e}"),
                    }
                }
                Op::Read { name } => {
                    match fs.read(&path_for(name), now) {
                        Ok(data) => prop_assert!(!data.is_empty()),
                        Err(FsError::NotFound { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected read error {e}"),
                    }
                }
                Op::Reclaim => {
                    let _ = fs.reclaim_expired(now);
                }
            }

            // Invariant: listing agrees with storage accounting.
            let now = SimTime::from_days(day);
            let entries = fs.list("/files", now).unwrap();
            let mut listed_bytes = 0u64;
            for entry in &entries {
                prop_assert_eq!(entry.kind, EntryKind::File);
                let path = format!("/files/{}", entry.name);
                let stat = fs.stat(&path, now).expect("listed file must stat");
                let data = fs.read(&path, now).expect("listed file must read");
                prop_assert_eq!(stat.size.as_bytes(), data.len() as u64);
                listed_bytes += stat.size.as_bytes();
            }
            prop_assert_eq!(
                fs.used().as_bytes(),
                listed_bytes,
                "storage holds bytes the namespace cannot see"
            );
        }
    }
}
