//! Differential test of the indexed incremental engine against the naive
//! scan-everything oracle.
//!
//! the indexed unit runs on the event-queue/eviction-index
//! engine; the `naive_oracle(true)` unit re-derives every decision by
//! scanning all residents. Arbitrary operation sequences — stores with
//! every curve family, removals, rejuvenations, demotions, expiry sweeps,
//! admission probes and clock advances at non-decreasing times — must
//! produce identical outcomes on both, and importance densities that agree
//! to within fp-accumulation noise.

use proptest::prelude::*;
use temporal_reclaim::core::{
    EvictionPolicy, Importance, ImportanceCurve, ObjectId, ObjectSpec, PiecewiseCurve, StorageUnit,
};
use temporal_reclaim::{ByteSize, SimDuration, SimTime};

const DENSITY_TOLERANCE: f64 = 1e-9;
const MINUTES_PER_DAY: u64 = 24 * 60;

/// One step of the differential script. Times are deltas so sequences are
/// non-decreasing by construction; object references are indices into the
/// set of ids minted so far.
#[derive(Debug, Clone)]
enum Op {
    Store { mib: u64, curve: ImportanceCurve },
    Remove { pick: usize },
    Rejuvenate { pick: usize, curve: ImportanceCurve },
    Reannotate { pick: usize, curve: ImportanceCurve },
    Sweep,
    Peek { mib: u64, importance: f64 },
    Advance,
}

fn importance_strategy() -> impl Strategy<Value = Importance> {
    (0.0f64..=1.0).prop_map(Importance::new_clamped)
}

/// Durations at minute resolution so segment boundaries actually fire
/// inside the simulated horizon (including the zero-wane step edge case).
fn duration_strategy() -> impl Strategy<Value = SimDuration> {
    (0u64..40 * MINUTES_PER_DAY).prop_map(SimDuration::from_minutes)
}

fn piecewise_strategy() -> impl Strategy<Value = ImportanceCurve> {
    (
        importance_strategy(),
        importance_strategy(),
        1u64..20 * MINUTES_PER_DAY,
        1u64..20 * MINUTES_PER_DAY,
    )
        .prop_map(|(a, b, d1, d2)| {
            let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
            let points = vec![
                (SimDuration::ZERO, hi),
                (SimDuration::from_minutes(d1), lo),
                (SimDuration::from_minutes(d1 + d2), Importance::ZERO),
            ];
            PiecewiseCurve::new(points)
                .expect("descending points are valid")
                .into()
        })
}

fn curve_strategy() -> impl Strategy<Value = ImportanceCurve> {
    prop_oneof![
        Just(ImportanceCurve::Persistent),
        Just(ImportanceCurve::Ephemeral),
        (importance_strategy(), duration_strategy())
            .prop_map(|(importance, expiry)| ImportanceCurve::Fixed { importance, expiry }),
        (
            importance_strategy(),
            duration_strategy(),
            duration_strategy()
        )
            .prop_map(|(importance, persist, wane)| ImportanceCurve::TwoStep {
                importance,
                persist,
                wane,
            }),
        (
            importance_strategy(),
            duration_strategy(),
            duration_strategy(),
            1u64..20 * MINUTES_PER_DAY,
        )
            .prop_map(|(importance, persist, wane, half_life)| {
                ImportanceCurve::exp_decay(
                    importance,
                    persist,
                    wane,
                    SimDuration::from_minutes(half_life),
                )
                .expect("positive half-life")
            }),
        piecewise_strategy(),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored `prop_oneof!` picks arms uniformly; repeating the store
    // arm biases scripts toward churn under preemption pressure.
    prop_oneof![
        (1u64..24, curve_strategy()).prop_map(|(mib, curve)| Op::Store { mib, curve }),
        (1u64..24, curve_strategy()).prop_map(|(mib, curve)| Op::Store { mib, curve }),
        (1u64..24, curve_strategy()).prop_map(|(mib, curve)| Op::Store { mib, curve }),
        (1u64..24, curve_strategy()).prop_map(|(mib, curve)| Op::Store { mib, curve }),
        (0usize..64).prop_map(|pick| Op::Remove { pick }),
        (0usize..64, curve_strategy()).prop_map(|(pick, curve)| Op::Rejuvenate { pick, curve }),
        (0usize..64, curve_strategy()).prop_map(|(pick, curve)| Op::Reannotate { pick, curve }),
        Just(Op::Sweep),
        (1u64..32, 0.0f64..=1.0).prop_map(|(mib, importance)| Op::Peek { mib, importance }),
        Just(Op::Advance),
    ]
}

/// `(minutes until this op, op)` pairs — timestamps accumulate, so the
/// sequence presented to both units is non-decreasing.
fn script_strategy() -> impl Strategy<Value = Vec<(u64, Op)>> {
    proptest::collection::vec((0u64..3 * MINUTES_PER_DAY, op_strategy()), 1..60)
}

/// Drives the same script through an indexed unit and a naive oracle and
/// asserts lockstep-identical behaviour at every step.
fn run_differential(script: Vec<(u64, Op)>, policy: EvictionPolicy) {
    // Small capacity versus the size range above keeps the unit under
    // constant preemption pressure.
    let capacity = ByteSize::from_mib(96);
    let mut indexed = StorageUnit::builder(capacity).policy(policy).build();
    let mut naive = StorageUnit::builder(capacity)
        .policy(policy)
        .naive_oracle(true)
        .build();
    let mut now = SimTime::ZERO;
    let mut minted: Vec<ObjectId> = Vec::new();
    let mut next_id = 0u64;

    for (step, (delta, op)) in script.into_iter().enumerate() {
        now += SimDuration::from_minutes(delta);
        match op {
            Op::Store { mib, curve } => {
                let id = ObjectId::new(next_id);
                next_id += 1;
                minted.push(id);
                let spec = ObjectSpec::new(id, ByteSize::from_mib(mib), curve);
                let a = indexed.store(spec.clone(), now);
                let b = naive.store(spec, now);
                assert_eq!(a, b, "store diverged at step {step}");
            }
            Op::Remove { pick } => {
                let Some(&id) = minted.get(pick % minted.len().max(1)) else {
                    continue;
                };
                let a = indexed.remove(id, now);
                let b = naive.remove(id, now);
                assert_eq!(a, b, "remove diverged at step {step}");
            }
            Op::Rejuvenate { pick, curve } => {
                let Some(&id) = minted.get(pick % minted.len().max(1)) else {
                    continue;
                };
                let a = indexed.rejuvenate(id, curve.clone(), now);
                let b = naive.rejuvenate(id, curve, now);
                assert_eq!(a, b, "rejuvenate diverged at step {step}");
            }
            Op::Reannotate { pick, curve } => {
                let Some(&id) = minted.get(pick % minted.len().max(1)) else {
                    continue;
                };
                let a = indexed.reannotate(id, curve.clone(), now);
                let b = naive.reannotate(id, curve, now);
                assert_eq!(a, b, "reannotate diverged at step {step}");
            }
            Op::Sweep => {
                let a = indexed.sweep_expired(now);
                let b = naive.sweep_expired(now);
                assert_eq!(a, b, "sweep diverged at step {step}");
            }
            Op::Peek { mib, importance } => {
                let incoming = Importance::new_clamped(importance);
                let a = indexed.peek_admission(ByteSize::from_mib(mib), incoming, now);
                let b = naive.peek_admission(ByteSize::from_mib(mib), incoming, now);
                assert_eq!(a, b, "peek diverged at step {step}");
            }
            Op::Advance => {
                indexed.advance(now);
                naive.advance(now);
            }
        }

        assert_eq!(indexed.used(), naive.used(), "used diverged at step {step}");
        assert_eq!(indexed.len(), naive.len(), "len diverged at step {step}");
        let da = indexed.importance_density(now);
        let db = naive.importance_density(now);
        assert!(
            (da - db).abs() < DENSITY_TOLERANCE,
            "density diverged at step {step}: indexed {da} vs naive {db}"
        );
    }

    // Final state: identical residents (ids, sizes, annotations all flow
    // from the identical operation outcomes, so ids suffice) and counters.
    let mut residents_indexed: Vec<ObjectId> = indexed.iter().map(|o| o.id()).collect();
    let mut residents_naive: Vec<ObjectId> = naive.iter().map(|o| o.id()).collect();
    residents_indexed.sort_unstable();
    residents_naive.sort_unstable();
    assert_eq!(residents_indexed, residents_naive);
    assert_eq!(indexed.stats(), naive.stats());
}

proptest! {
    /// The indexed preemption planner matches the naive §5.3 scan:
    /// identical victims in identical order, identical rejections (with
    /// identical reclaimable/blocking diagnostics), identical sweeps and
    /// probe answers, and densities equal to within 1e-9.
    #[test]
    fn indexed_engine_matches_naive_oracle_preemptive(script in script_strategy()) {
        run_differential(script, EvictionPolicy::Preemptive);
    }

    /// Same lockstep equivalence under the Palimpsest FIFO policy.
    #[test]
    fn indexed_engine_matches_naive_oracle_fifo(script in script_strategy()) {
        run_differential(script, EvictionPolicy::Fifo);
    }
}

/// Nightly deep fuzz: `DIFF_CASES=4096` (or any count) cranks the same
/// differential far past the default 256 cases. A no-op when the env var
/// is unset, so regular `cargo test` stays fast; case seeds depend only
/// on the property name and case index, so deep runs replay the default
/// cases first and then explore new ones.
#[test]
fn deep_fuzz_engine_differential() {
    let Some(cases) = std::env::var("DIFF_CASES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    else {
        return;
    };
    let strategy = script_strategy();
    for (name, policy) in [
        (
            "indexed_engine_matches_naive_oracle_preemptive",
            EvictionPolicy::Preemptive,
        ),
        (
            "indexed_engine_matches_naive_oracle_fifo",
            EvictionPolicy::Fifo,
        ),
    ] {
        proptest::test_runner::run_cases_n(name, cases, |rng| {
            run_differential(strategy.generate(rng), policy);
            Ok(())
        });
    }
}
