//! Differential determinism test for `tempimpd`, the sharded serving
//! layer.
//!
//! N concurrent clients hammer a live service through the pipelined
//! submit path and the blocking `StoreApi` path simultaneously. The
//! service records each shard's *effective* request log — batch-coalesced
//! monotone timestamps, in the shard's processing order. Replaying every
//! log single-threaded through [`tempimpd::replay`] must reproduce each
//! live shard exactly: same residents, same occupancy, same lifetime
//! counters, same importance density. That holds because a shard's final
//! state is a pure function of its effective log — concurrency only
//! decides the interleaving, never the semantics.
//!
//! Alongside it, property tests pin the routing function: total (every id
//! maps to a shard in range) and stable (fresh routers agree, so a log
//! replayed tomorrow lands objects on the same shards as the live run).

use proptest::prelude::*;
use temporal_reclaim::serve::{replay, Pending, Tempimpd};
use temporal_reclaim::tempimp::*;

const CLIENTS: u32 = 4;
const OPS_PER_CLIENT: u64 = 2_000;
const SHARDS: u32 = 4;
/// Simulated minutes between a client's consecutive ops: fast enough that
/// the run spans months, so waning, expiry and cadenced sweeps all fire
/// while the clients are still writing.
const SIM_MINUTES_PER_OP: u64 = 90;

fn curve_for(pick: u32) -> ImportanceCurve {
    match pick % 5 {
        0 => ImportanceCurve::two_step(
            Importance::FULL,
            SimDuration::from_days(10),
            SimDuration::from_days(10),
        ),
        1 => ImportanceCurve::Fixed {
            importance: Importance::new_clamped(0.5),
            expiry: SimDuration::from_days(20),
        },
        2 => ImportanceCurve::fixed_lifetime(SimDuration::from_days(7)),
        3 => ImportanceCurve::Persistent,
        _ => ImportanceCurve::Ephemeral,
    }
}

/// One client's deterministic op stream: mostly puts (keys strided so
/// clients collide on shards but never on ids), with gets, advise probes
/// and the occasional fan-out mixed in, issued through a blend of the
/// pipelined and the blocking paths.
fn drive(client: &mut ServeClient, index: u32, rng: &mut impl rand::Rng) {
    let base = u64::from(index) << 32;
    let mut pending: Vec<Pending> = Vec::new();
    let mut put_count = 0u64;
    for i in 0..OPS_PER_CLIENT {
        let at = SimTime::from_minutes(i * SIM_MINUTES_PER_OP);
        let roll = rng.gen_range(0u32..100);
        let request = if roll < 60 || put_count == 0 {
            put_count += 1;
            Request::Put {
                id: ObjectId::new(base + put_count),
                bytes: ByteSize::from_mib(1 + rng.gen_range(0u64..8)),
                curve: curve_for(rng.gen_range(0u32..32)),
                class: Default::default(),
            }
        } else if roll < 85 {
            Request::Get {
                id: ObjectId::new(base + 1 + rng.gen_range(0..put_count)),
            }
        } else if roll < 95 {
            Request::Advise {
                id: ObjectId::new(base + (1 << 24) + i),
                bytes: ByteSize::from_mib(4),
                incoming: Importance::new_clamped(0.8),
            }
        } else if roll < 98 {
            Request::Density
        } else {
            Request::Stats
        };
        // Blend transports: pipelined submits keep many requests racing
        // across shards; periodic blocking calls interleave the other
        // code path (and bound the window).
        if i % 16 == 0 {
            let _ = client.call(at, request);
            for p in pending.drain(..) {
                let _: Response = p.wait();
            }
        } else {
            pending.push(client.submit(at, request).expect("live service accepts"));
        }
    }
    for p in pending {
        let _ = p.wait();
    }
}

/// The tentpole property: a concurrent run replayed single-threaded per
/// shard reproduces the live fleet exactly.
#[test]
fn concurrent_run_replays_to_identical_shards() {
    let service = Tempimpd::builder()
        .shards(SHARDS)
        // Small shards so preemption and rejection both happen under the
        // concurrent load — determinism must survive the interesting
        // paths, not just happy-path appends.
        .shard_capacity(ByteSize::from_mib(96))
        .record_log(true)
        .spawn();
    let capacity = service.shard_capacity();
    let policy = service.policy();
    let sweep_every = service.sweep_every();
    let router = ShardRouter::new(service.shards());
    let prototype = service.client();

    crossbeam::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let mut client = prototype.clone();
            scope.spawn(move |_| {
                let mut rng = rng::stream(0xd1ff, &format!("serve-diff-{c}"));
                drive(&mut client, c, &mut rng);
            });
        }
    })
    .expect("client scope");
    drop(prototype);

    let reports = service.shutdown().expect_clean();
    assert_eq!(reports.len() as u32, SHARDS);
    let total_requests: u64 = reports.iter().map(|r| r.requests).sum();
    // Keyed requests land on exactly one shard; each Density/Stats
    // fan-out lands on all of them, so the floor is every client's op
    // count.
    assert!(total_requests >= u64::from(CLIENTS) * OPS_PER_CLIENT);

    for report in reports {
        // The log is the shard's ground truth; replaying it through the
        // same single-threaded engine must land in the identical state.
        let replayed = replay(capacity, policy, sweep_every, &report.log);
        assert_eq!(
            replayed.now(),
            report.final_now,
            "shard {}: effective clock diverged",
            report.shard
        );
        let live = &report.unit;
        let twin = replayed.unit();
        assert_eq!(
            live.len(),
            twin.len(),
            "shard {}: resident count",
            report.shard
        );
        assert_eq!(
            live.used(),
            twin.used(),
            "shard {}: occupancy",
            report.shard
        );
        assert_eq!(
            live.stats(),
            twin.stats(),
            "shard {}: lifetime counters",
            report.shard
        );

        let mut live_objects: Vec<_> = live.iter().map(|o| (o.id(), o.size())).collect();
        let mut twin_objects: Vec<_> = twin.iter().map(|o| (o.id(), o.size())).collect();
        live_objects.sort_unstable();
        twin_objects.sort_unstable();
        assert_eq!(
            live_objects, twin_objects,
            "shard {}: residents",
            report.shard
        );

        // Ownership is total: everything resident on this shard routes
        // here, so no request ever reached the wrong worker.
        for (id, _) in &live_objects {
            assert_eq!(
                router.route(*id),
                report.shard,
                "object {id:?} on wrong shard"
            );
        }

        let live_density = live.importance_density(report.final_now);
        let twin_density = twin.importance_density(report.final_now);
        assert!(
            (live_density - twin_density).abs() < 1e-12,
            "shard {}: density diverged ({live_density} vs {twin_density})",
            report.shard
        );
    }
}

proptest! {
    /// Routing is total: for any shard count and any id, the route is a
    /// valid shard index.
    #[test]
    fn routing_is_total(shards in 1u32..=64, raw in 0u64..=u64::MAX) {
        let router = ShardRouter::new(shards);
        prop_assert!(router.route(ObjectId::new(raw)) < shards);
    }

    /// Routing is stable: fresh routers with the same shard count agree
    /// on every id, and repeated calls agree with themselves — the
    /// property that lets a recorded log find its objects on replay.
    #[test]
    fn routing_is_stable(shards in 1u32..=64, raw in 0u64..=u64::MAX) {
        let id = ObjectId::new(raw);
        let a = ShardRouter::new(shards);
        let b = ShardRouter::new(shards);
        prop_assert_eq!(a.route(id), b.route(id));
        prop_assert_eq!(a.route(id), a.route(id));
    }
}
