//! Property tests for [`SeriesRecorder`] downsampling (DESIGN.md §3.4).
//!
//! The ring buffers behind a recorder must stay bounded no matter how long
//! a run gets, while never losing the endpoints of a trajectory or the
//! time-ordering that makes it plottable.

#![cfg(not(feature = "obs-off"))]

use obs::{Observer, SeriesRecorder};
use proptest::prelude::*;
use sim_core::{SimDuration, SimTime};

proptest! {
    #[test]
    fn downsampling_keeps_endpoints_ordered_and_bounded(
        cadence in 1u64..=120,
        capacity in 4usize..=64,
        steps in 1u64..=3_000,
    ) {
        let recorder =
            SeriesRecorder::with_capacity(SimDuration::from_minutes(cadence), capacity);
        recorder.track_counter("ops");
        for _ in 0..steps {
            recorder.counter("ops", 1);
        }
        recorder.advance_to(SimTime::from_minutes((steps - 1) * cadence));

        let samples = recorder.series("ops").expect("tracked series exists");
        prop_assert!(!samples.is_empty());
        // The first grid instant survives every downsampling pass (even
        // positions always include position zero) and the latest sample is
        // always re-attached by `series()`.
        prop_assert_eq!(samples.first().unwrap().0, SimTime::ZERO);
        prop_assert_eq!(
            samples.last().unwrap().0,
            SimTime::from_minutes((steps - 1) * cadence)
        );
        // Bounded memory: at most the ring capacity plus the live tail.
        prop_assert!(samples.len() <= capacity + 1);
        // Strictly monotone SimTime, and the counter itself never runs
        // backwards, so downsampling cannot reorder or duplicate points.
        for pair in samples.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0, "time went backwards: {pair:?}");
            prop_assert!(pair[0].1 <= pair[1].1, "counter decreased: {pair:?}");
        }
    }

    #[test]
    fn event_series_keep_endpoints_through_downsampling(
        capacity in 4usize..=32,
        count in 1u64..=2_000,
        stride_minutes in 1u64..=500,
    ) {
        let recorder =
            SeriesRecorder::with_capacity(SimDuration::from_minutes(1), capacity);
        recorder.track_events("density.sample", "density_ppm", &[]);
        for i in 0..count {
            recorder.event(
                SimTime::from_minutes(i * stride_minutes),
                "density.sample",
                &[("density_ppm", i)],
            );
        }
        let samples = recorder
            .series("density.sample.density_ppm")
            .expect("event series exists");
        prop_assert_eq!(samples.first().unwrap(), &(SimTime::ZERO, 0));
        prop_assert_eq!(
            samples.last().unwrap(),
            &(SimTime::from_minutes((count - 1) * stride_minutes), count - 1)
        );
        prop_assert!(samples.len() <= capacity + 1);
        for pair in samples.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0);
        }
    }
}
