//! Property tests for the fairness layer and the annotation advisor.

use proptest::prelude::*;
use temporal_reclaim::core::{
    Advisor, FairStore, FairStoreError, Importance, ImportanceCurve, ObjectId, ObjectSpec,
    PrincipalId, StorageUnit,
};
use temporal_reclaim::{ByteSize, SimDuration, SimTime};

proptest! {
    /// Conservation: the sum of per-principal charges always equals the
    /// weighted bytes of resident objects, through stores, preemptions,
    /// sweeps and removals.
    #[test]
    fn charges_are_conserved(
        ops in proptest::collection::vec(
            (0u32..4, 1u64..120, 0.0f64..=1.0, 0u64..60, 0u8..4),
            1..80,
        ),
    ) {
        let mut store = FairStore::new(
            StorageUnit::new(ByteSize::from_mib(500)),
            ByteSize::from_mib(200),
        );
        for (i, (user, mib, importance, day, op)) in ops.into_iter().enumerate() {
            let now = SimTime::from_days(day);
            match op {
                0..=1 => {
                    let spec = ObjectSpec::new(
                        ObjectId::new(i as u64),
                        ByteSize::from_mib(mib),
                        ImportanceCurve::Fixed {
                            importance: Importance::new_clamped(importance),
                            expiry: SimDuration::from_days(30),
                        },
                    );
                    let _ = store.store(PrincipalId::new(user), spec, now);
                }
                2 => {
                    // Remove an arbitrary (maybe absent) object.
                    let _ = store.remove(ObjectId::new((i / 2) as u64), now);
                }
                _ => {
                    let _ = store.sweep_expired(now);
                }
            }
            // Recompute ground truth from the unit's residents.
            let expected: u64 = store
                .unit()
                .iter()
                .map(|o| {
                    (o.size().as_bytes() as f64
                        * o.curve().initial_importance().value())
                    .ceil() as u64
                })
                .sum();
            prop_assert_eq!(store.total_charged(), expected);
        }
    }

    /// No principal's charge ever exceeds the budget.
    #[test]
    fn budgets_are_never_exceeded(
        ops in proptest::collection::vec((0u32..3, 1u64..150, 0.0f64..=1.0), 1..60),
    ) {
        let budget = ByteSize::from_mib(100);
        let mut store = FairStore::new(
            StorageUnit::new(ByteSize::from_mib(1000)),
            budget,
        );
        for (i, (user, mib, importance)) in ops.into_iter().enumerate() {
            let principal = PrincipalId::new(user);
            let spec = ObjectSpec::new(
                ObjectId::new(i as u64),
                ByteSize::from_mib(mib),
                ImportanceCurve::Fixed {
                    importance: Importance::new_clamped(importance),
                    expiry: SimDuration::from_days(30),
                },
            );
            match store.store(principal, spec, SimTime::ZERO) {
                Ok(_) | Err(FairStoreError::QuotaExceeded { .. }) => {}
                Err(FairStoreError::Store(_)) => {}
                Err(_) => {}
            }
            prop_assert!(store.usage(principal).charged <= budget.as_bytes());
        }
    }

    /// Advisor consistency: for any mix of resident objects and probe
    /// size, the advisor's size-aware threshold agrees with the engine —
    /// just above it admits, at-or-below (when positive) rejects.
    #[test]
    fn advisor_threshold_matches_engine(
        fill in proptest::collection::vec((1u64..80, 0.01f64..=1.0), 0..30),
        probe_mib in 1u64..200,
    ) {
        let mut unit = StorageUnit::new(ByteSize::from_mib(200));
        for (i, (mib, importance)) in fill.into_iter().enumerate() {
            let _ = unit.store(
                ObjectSpec::new(
                    ObjectId::new(i as u64),
                    ByteSize::from_mib(mib),
                    ImportanceCurve::Fixed {
                        importance: Importance::new_clamped(importance),
                        expiry: SimDuration::from_days(3650),
                    },
                ),
                SimTime::ZERO,
            );
        }
        let advisor = Advisor::from_snapshot(unit.density_snapshot(SimTime::ZERO));
        let size = ByteSize::from_mib(probe_mib);
        let threshold = advisor.admission_threshold_for(size);

        if threshold < Importance::FULL {
            let above = Importance::new_clamped(threshold.value() + 0.005);
            // Strictly above the least-displaceable importance: admitted.
            if above > threshold {
                prop_assert!(
                    unit.peek_admission(size, above, SimTime::ZERO).is_admitted(),
                    "threshold {threshold} but {above} rejected for {probe_mib} MiB"
                );
            }
        }
        if !threshold.is_zero() {
            prop_assert!(
                !unit.peek_admission(size, threshold, SimTime::ZERO).is_admitted(),
                "threshold {threshold} itself admitted for {probe_mib} MiB"
            );
        }
    }
}
