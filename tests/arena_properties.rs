//! Property-based tests for the generational ID arena and the dense
//! sorted-list index that replaced the `ObjectId`-keyed hash maps on the
//! engine's hot paths.
//!
//! Two invariants carry the whole refactor:
//!
//! 1. **No aliasing through recycled slots.** Removing an object frees
//!    its slot for reuse, but any `ArenaIdx` handle captured before the
//!    removal must go stale forever — the generation counter makes a
//!    recycled slot unreachable through old handles.
//! 2. **Dense iteration matches map ordering.** `SortedList` (tombstoned
//!    parallel arrays with a head pointer and periodic compaction) must
//!    iterate in exactly the order a `BTreeMap` would — this is the
//!    ordering the eviction index inherited from the map era and the one
//!    the golden trace pins.

use std::collections::BTreeMap;

use proptest::prelude::*;
use temporal_reclaim::core::arena::{ArenaIdx, ObjectArena};
use temporal_reclaim::core::dense::SortedList;
use temporal_reclaim::core::{ImportanceCurve, ObjectId, ObjectSpec, StoredObject};
use temporal_reclaim::{ByteSize, SimTime};

fn stored(id: u64) -> StoredObject {
    StoredObject::from_spec(
        ObjectSpec::new(
            ObjectId::new(id),
            ByteSize::from_mib(1),
            ImportanceCurve::Persistent,
        ),
        SimTime::ZERO,
    )
}

/// One step of an insert/remove workload: ids are drawn from a small
/// range so removals hit live objects and slots get recycled often.
#[derive(Debug, Clone)]
enum ArenaOp {
    Insert(u64),
    Remove(u64),
}

fn arena_ops() -> impl Strategy<Value = Vec<ArenaOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..48).prop_map(ArenaOp::Insert),
            (0u64..48).prop_map(ArenaOp::Remove),
        ],
        1..200,
    )
}

proptest! {
    /// Replays a random insert/remove history against a `BTreeMap` model,
    /// capturing the `ArenaIdx` of every insertion. At every step, every
    /// handle whose object was since removed must fail to resolve (even
    /// though its slot has likely been recycled), and every live handle
    /// must still resolve to its own object.
    #[test]
    fn recycled_slots_never_alias_live_objects(ops in arena_ops()) {
        let mut arena = ObjectArena::new();
        let mut model: BTreeMap<u64, ArenaIdx> = BTreeMap::new();
        let mut stale: Vec<(u64, ArenaIdx)> = Vec::new();

        for op in ops {
            match op {
                ArenaOp::Insert(id) => {
                    if model.contains_key(&id) {
                        continue;
                    }
                    let idx = arena.insert(stored(id));
                    model.insert(id, idx);
                }
                ArenaOp::Remove(id) => {
                    if let Some(idx) = model.remove(&id) {
                        let removed = arena.remove(ObjectId::new(id));
                        prop_assert_eq!(removed.expect("model says live").id().raw(), id);
                        stale.push((id, idx));
                    }
                }
            }

            prop_assert_eq!(arena.len(), model.len());
            for (&id, &idx) in &model {
                let object = arena.resolve(idx);
                prop_assert_eq!(
                    object.map(|o| o.id().raw()),
                    Some(id),
                    "live handle for {} stopped resolving", id
                );
                prop_assert_eq!(arena.lookup(ObjectId::new(id)), Some(idx));
            }
            for &(id, idx) in &stale {
                // The id may have been re-inserted under a *new* handle;
                // the old handle must never see it (or anything else).
                // A resolving stale handle would be aliasing: the
                // generation check must return None even when the slot
                // has been recycled for a new object (possibly this very
                // id, re-inserted under a fresh generation).
                if let Some(object) = arena.resolve(idx) {
                    prop_assert!(
                        false,
                        "stale handle (slot {}, gen {}) resolved to object {}",
                        idx.slot(),
                        idx.generation(),
                        object.id()
                    );
                }
                prop_assert!(model.get(&id) != Some(&idx));
            }
        }
    }

    /// Ids inserted into the arena iterate in ascending id order, exactly
    /// like the `BTreeMap<ObjectId, StoredObject>` the arena replaced —
    /// serialization and snapshot determinism both lean on this.
    #[test]
    fn arena_iteration_is_id_sorted(raw in proptest::collection::vec(0u64..10_000, 0..64)) {
        let mut arena = ObjectArena::new();
        // Insert in arrival order, which is arbitrary; skip duplicates.
        for &id in &raw {
            if !arena.contains(ObjectId::new(id)) {
                arena.insert(stored(id));
            }
        }
        let seen: Vec<u64> = arena.iter().map(|o| o.id().raw()).collect();
        let mut expected = raw;
        expected.sort_unstable();
        expected.dedup();
        prop_assert_eq!(seen, expected);
    }
}

/// One step of a keyed workload against the dense index.
#[derive(Debug, Clone)]
enum ListOp {
    Insert(u64),
    Remove(u64),
    PopFirst,
}

fn list_ops() -> impl Strategy<Value = Vec<ListOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(ListOp::Insert),
            (0u64..64).prop_map(ListOp::Remove),
            Just(ListOp::PopFirst),
        ],
        1..300,
    )
}

proptest! {
    /// Replays a random workload against a `BTreeMap` model: after every
    /// step the tombstoned dense list and the map must agree on length,
    /// first element, full iteration order, and mid-stream iteration —
    /// the orderings the eviction index pinned in the golden trace.
    #[test]
    fn sorted_list_matches_btreemap_iteration_order(ops in list_ops()) {
        let mut list: SortedList<u64> = SortedList::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut payload = 0u64;

        for op in ops {
            match op {
                ListOp::Insert(key) => {
                    if model.contains_key(&key) {
                        continue; // the engine never double-inserts a key
                    }
                    list.insert(key, payload);
                    model.insert(key, payload);
                    payload += 1;
                }
                ListOp::Remove(key) => {
                    prop_assert_eq!(list.remove(&key), model.remove(&key));
                }
                ListOp::PopFirst => {
                    let expected = model.pop_first();
                    prop_assert_eq!(list.pop_first(), expected);
                }
            }

            prop_assert_eq!(list.len(), model.len());
            prop_assert_eq!(list.is_empty(), model.is_empty());
            prop_assert_eq!(list.first(), model.first_key_value().map(|(&k, &v)| (k, v)));

            let dense: Vec<(u64, u64)> = list.iter().collect();
            let mapped: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(dense, mapped);

            // Resuming mid-stream (the candidate-merge path) must agree
            // with the map's range view from the same key.
            if let Some((&mid, _)) = model.iter().nth(model.len() / 2) {
                let dense_tail: Vec<(u64, u64)> = list.iter_from(mid).collect();
                let mapped_tail: Vec<(u64, u64)> =
                    model.range(mid..).map(|(&k, &v)| (k, v)).collect();
                prop_assert_eq!(dense_tail, mapped_tail);
            }
        }
    }
}
