//! Crash-recovery contracts of the durable segment-log backend.
//!
//! Two crash shapes that matter most for a log-structured store:
//!
//! * **Killed mid-compaction.** The compaction commit protocol appends
//!   survivor rewrites, then tombstones, then the `Compacted` commit
//!   record, syncs, and only then deletes the victim file. A crash that
//!   tears the commit record must leave a log that recovers to *exactly*
//!   the state a completed compaction (or no compaction at all) would
//!   produce — the victim file is still there, the torn commit is
//!   truncated away, and latest-record-wins replay makes the duplicate
//!   survivor records harmless.
//! * **Torn tail under the golden workload.** The same seeded workload
//!   whose engine trace is pinned byte-for-byte by
//!   `tests/golden/engine_trace.jsonl` is driven through a [`DurableUnit`]
//!   instead: the trace must still match the committed golden file
//!   (journaling is invisible to the engine), and after corrupting the
//!   log's tail, reopening must reproduce the pre-corruption engine
//!   state exactly.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use sim_core::{ByteSize, SimDuration, SimTime};
use tempimp_durable::{DurableConfig, DurableUnit};
use temporal_importance::{EvictionPolicy, ImportanceCurve, ObjectId, ObjectSpec};

/// A fresh scratch directory under the workspace `target/` (tests must
/// not touch anything outside the repository).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/durable-recovery-scratch"
    ))
    .join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch");
    }
    dir
}

/// Everything the engine can observe about a unit's state, as one
/// comparable string (the vendored serde is typed, so the serialization
/// covers residents, stats, and occupancy).
fn fingerprint(unit: &DurableUnit) -> String {
    serde_json::to_string(unit.unit()).expect("unit state serializes")
}

/// The highest-numbered segment file in a log directory — where the most
/// recently appended records live.
fn last_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read log dir")
        .map(|entry| entry.expect("dir entry").path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("seg-") && name.ends_with(".log"))
        })
        .collect();
    segments.sort();
    segments.pop().expect("log has at least one segment")
}

/// Copies every segment file of `from` into `to` (overwriting), leaving
/// files that exist only in `to` untouched.
fn overlay(from: &Path, to: &Path) {
    for entry in std::fs::read_dir(from).expect("read source dir") {
        let path = entry.expect("dir entry").path();
        if path.is_file() {
            let name = path.file_name().expect("segment file name");
            std::fs::copy(&path, to.join(name)).expect("copy segment");
        }
    }
}

const CAPACITY: ByteSize = ByteSize::from_mib(4_000);

fn tiny_open(dir: &Path) -> DurableUnit {
    // 2 KiB segments: the workload below spreads across dozens of sealed
    // segments, so compaction has real victims to choose from. Automatic
    // compaction is off — the test controls exactly when it runs.
    let config = DurableConfig::default()
        .segment_bytes(2048)
        .auto_compact(false);
    DurableUnit::open(dir, CAPACITY, EvictionPolicy::Preemptive, config).expect("open segment log")
}

/// A mixed mutation history with plenty of dead weight: stores with
/// cycling lifetimes, explicit removes, and an expiry sweep.
fn churn(unit: &mut DurableUnit) {
    for id in 0..120u64 {
        unit.store(
            ObjectSpec::new(
                ObjectId::new(id),
                ByteSize::from_kib(64 + id % 7),
                ImportanceCurve::fixed_lifetime(SimDuration::from_days(2 + (id % 5) * 3)),
            ),
            SimTime::from_minutes(id),
        )
        .expect("store fits");
    }
    for id in (0..120u64).step_by(3) {
        unit.remove(ObjectId::new(id), SimTime::from_hours(3))
            .expect("journal remove");
    }
    unit.sweep_expired(SimTime::from_days(3))
        .expect("journal sweep");
}

#[test]
fn a_crash_mid_compaction_recovers_to_the_clean_state() {
    let live = scratch("mid-compaction-live");
    let crashed = scratch("mid-compaction-crash");

    // Build the history and snapshot the log as it looks the instant
    // before compaction starts.
    let mut unit = tiny_open(&live);
    churn(&mut unit);
    drop(unit.close().expect("clean close"));
    std::fs::create_dir_all(&crashed).expect("create crash dir");
    overlay(&live, &crashed);

    // Run one real compaction to completion and capture the state every
    // recovery must reproduce.
    let mut unit = tiny_open(&live);
    let now = SimTime::from_days(3);
    let report = unit
        .compact(now)
        .expect("compaction runs")
        .expect("the churn left a compactable victim");
    assert!(report.reclaimed_bytes > 0, "compaction reclaimed disk");
    let expected = fingerprint(&unit);
    let expected_stats = *unit.unit().stats();
    let expected_used = unit.unit().used();
    let expected_residents = unit.unit().len();
    let expected_density = unit.unit().importance_density(now);
    let expected_clock = unit.clock();
    let expected_sweep = unit.last_sweep();
    drop(unit.close().expect("clean close"));

    // Reconstruct the mid-compaction crash: the live dir's files after
    // compaction (survivor rewrites, tombstones, commit record appended;
    // victim file deleted) overlaid on the snapshot, which still has the
    // victim file — then tear the final commit record, as a kill between
    // the survivor writes and the commit sync would.
    overlay(&live, &crashed);
    let tail = last_segment(&crashed);
    let len = std::fs::metadata(&tail).expect("stat tail").len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&tail)
        .expect("reopen tail segment");
    file.set_len(len - 3).expect("tear the commit record");
    drop(file);

    // Recovery: the torn commit is truncated away, the victim file (never
    // exonerated by a commit record) replays normally, and the duplicate
    // survivor records are absorbed by latest-record-wins.
    let recovered = tiny_open(&crashed);
    assert_eq!(fingerprint(&recovered), expected, "engine state identical");
    assert_eq!(*recovered.unit().stats(), expected_stats);
    assert_eq!(recovered.unit().used(), expected_used);
    assert_eq!(recovered.unit().len(), expected_residents);
    assert_eq!(recovered.unit().importance_density(now), expected_density);
    assert_eq!(recovered.clock(), expected_clock);
    assert_eq!(recovered.last_sweep(), expected_sweep);
    drop(recovered);

    std::fs::remove_dir_all(&live).ok();
    std::fs::remove_dir_all(&crashed).ok();
}

#[test]
fn a_crash_after_commit_but_before_victim_deletion_recovers_cleanly() {
    let live = scratch("post-commit-live");
    let crashed = scratch("post-commit-crash");

    let mut unit = tiny_open(&live);
    churn(&mut unit);
    drop(unit.close().expect("clean close"));
    std::fs::create_dir_all(&crashed).expect("create crash dir");
    overlay(&live, &crashed);

    let mut unit = tiny_open(&live);
    let now = SimTime::from_days(3);
    unit.compact(now)
        .expect("compaction runs")
        .expect("the churn left a compactable victim");
    let expected = fingerprint(&unit);
    drop(unit.close().expect("clean close"));

    // This time the commit record is fully on disk; only the victim-file
    // deletion never happened. Recovery must notice the commit and drop
    // the stale victim file itself.
    overlay(&live, &crashed);
    let recovered = tiny_open(&crashed);
    assert_eq!(fingerprint(&recovered), expected, "engine state identical");
    drop(recovered);

    // The stale victim file is gone from disk after recovery.
    let live_files: Vec<_> = std::fs::read_dir(&live)
        .expect("read live dir")
        .map(|e| e.expect("entry").file_name())
        .collect();
    for entry in std::fs::read_dir(&crashed).expect("read crash dir") {
        let name = entry.expect("entry").file_name();
        assert!(
            live_files.contains(&name),
            "recovery deleted the exonerated victim file, {name:?} remains"
        );
    }

    std::fs::remove_dir_all(&live).ok();
    std::fs::remove_dir_all(&crashed).ok();
}

#[cfg(not(feature = "obs-off"))]
mod golden {
    use super::*;
    use std::sync::Arc;

    use bench_harness::golden::{mixed_spec, CHURN_STORES, RESIDENTS, SEED};
    use sim_core::{rng, Obs};

    /// The golden observability workload of `tests/golden_trace.rs`,
    /// driven through a journaled unit instead of a bare [`StorageUnit`]:
    /// the traced engine behavior must be byte-identical (the journal is
    /// a pure listener), and the log it leaves behind must survive a torn
    /// tail with the engine state intact.
    ///
    /// [`StorageUnit`]: temporal_importance::StorageUnit
    #[test]
    fn the_golden_workload_traces_identically_through_the_journal_and_recovers() {
        let dir = scratch("golden");
        let mut rand = rng::seeded(SEED);
        let mut unit = DurableUnit::open(
            &dir,
            ByteSize::from_mib(2_000),
            EvictionPolicy::Preemptive,
            DurableConfig::default(),
        )
        .expect("open segment log");
        for id in 0..RESIDENTS {
            let _ = unit.store(mixed_spec(&mut rand, id), SimTime::ZERO);
        }

        let sink = Arc::new(obs::TraceSink::new());
        unit.set_observer(Obs::attached(sink.clone()));
        for k in 0..CHURN_STORES {
            let now = SimTime::from_days(30 + k / 8);
            unit.advance(now);
            let _ = unit.store(mixed_spec(&mut rand, RESIDENTS + k), now);
        }
        let trace = sink.to_jsonl();
        let golden = include_str!("golden/engine_trace.jsonl");
        assert!(
            trace == golden,
            "the journaled engine diverged from tests/golden/engine_trace.jsonl"
        );

        // Crash with a torn tail; recovery reproduces the exact state the
        // golden workload left behind.
        let expected = fingerprint(&unit);
        drop(unit.close().expect("clean close"));
        let tail = last_segment(&dir);
        let mut bytes = std::fs::read(&tail).expect("read tail segment");
        bytes.extend_from_slice(&[0xA5; 21]);
        std::fs::write(&tail, &bytes).expect("tear the tail");

        let recovered = DurableUnit::open(
            &dir,
            ByteSize::from_mib(2_000),
            EvictionPolicy::Preemptive,
            DurableConfig::default(),
        )
        .expect("recover");
        assert_eq!(recovered.recovered_torn_bytes(), 21);
        assert_eq!(fingerprint(&recovered), expected, "engine state identical");
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
}
