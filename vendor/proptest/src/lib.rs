//! Offline property-testing mini-framework exposing the `proptest` API
//! surface this workspace uses: the `proptest!`/`prop_assert!`/
//! `prop_assert_eq!`/`prop_oneof!` macros, `Strategy` with `prop_map`,
//! `Just`, integer/float range strategies, tuple strategies, and
//! `collection::vec`. Cases are generated from a per-test deterministic
//! seed; `PROPTEST_CASES` overrides the default of 256. Shrinking is
//! not implemented — failures report the failing values instead.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { strategy: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// A uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// An empty union; `generate` panics until `or` adds options.
        pub fn empty() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds one option.
        pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
            self.options.push(Box::new(strategy));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! needs options");
            let index = rng.gen_range(0..self.options.len());
            self.options[index].generate(rng)
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy for vectors whose length is drawn from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// A failed property assertion.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given explanation.
        pub fn fail(message: impl fmt::Display) -> Self {
            TestCaseError(message.to_string())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Number of cases to run: `PROPTEST_CASES` or 256.
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256)
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Runs `f` for each case with a deterministic per-(test, case) RNG,
    /// panicking with the failure message on the first `Err`.
    pub fn run_cases<F>(name: &str, f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        run_cases_n(name, case_count(), f);
    }

    /// [`run_cases`] with an explicit case count, for callers that scale
    /// depth themselves (e.g. nightly deep-fuzz jobs driven by an env
    /// var). Case seeds depend only on `(name, case index)`, so the first
    /// N cases of a deep run replay the default run exactly.
    pub fn run_cases_n<F>(name: &str, cases: u64, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            name_hash ^= u64::from(byte);
            name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        for case in 0..cases {
            let seed = splitmix64(name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(e) = f(&mut rng) {
                panic!("property `{name}` failed on case {case}/{cases}: {e}");
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests: each function runs once per generated case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
            }
        )*
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// A uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let union = $crate::strategy::Union::empty();
        $(let union = union.or($strategy);)+
        union
    }};
}
