//! Offline JSON serializer/deserializer over the vendored serde
//! content-tree model. Implements the two entry points the workspace
//! uses: [`to_string`] and [`from_str`].

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// A JSON encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// A `Result` alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::deserialize(&content)?)
}

fn write_content(content: &Content, out: &mut String) -> Result<()> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            if *v == v.trunc() && v.abs() < 1e15 {
                // Match serde_json's integral-float rendering ("1.0").
                out.push_str(&format!("{v:.1}"));
            } else {
                out.push_str(&v.to_string());
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_content(value, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a \uXXXX pair follows.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                match char::from_u32(combined) {
                                    Some(c) => out.push(c),
                                    None => return Err(Error::new("invalid surrogate pair")),
                                }
                            } else {
                                match char::from_u32(code) {
                                    Some(c) => out.push(c),
                                    None => return Err(Error::new("invalid \\u escape")),
                                }
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character `{}`",
                                other as char
                            )))
                        }
                    }
                }
                c if c < 0x20 => return Err(Error::new("control character in string")),
                _ => {
                    // Re-read the full UTF-8 character from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number: {text}")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<String>("\"a\\\"b\\n\"").unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("7").unwrap(), Some(7));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<f64>("\"hi\"").is_err());
    }
}
