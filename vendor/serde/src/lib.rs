//! Offline reimplementation of the subset of `serde` this workspace uses.
//!
//! Rather than serde's visitor-based zero-copy data model, this vendored
//! stand-in routes everything through an owned [`Content`] tree; the
//! matching vendored `serde_json` renders and parses that tree. The
//! visible behavior (externally tagged enums, transparent newtypes,
//! `try_from`/`into` container attributes, missing-`Option` = `None`,
//! unknown fields ignored) matches what real serde produces for the
//! types in this repository, and is exercised end to end by the
//! `workload::trace` round-trip tests.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A parsed/parseable value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object, in insertion order.
    Map(Vec<(String, Content)>),
}

/// A serialization or deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error(message.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// A type that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    fn deserialize(content: &Content) -> Result<Self, Error>;
}

macro_rules! serialize_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let raw = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "invalid type: expected {}, got {}",
                            stringify!($ty),
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    Error::custom(format!("integer out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $ty {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                let raw: i64 = match content {
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        Error::custom(format!("integer out of range for {}", stringify!($ty)))
                    })?,
                    Content::I64(v) => *v,
                    other => {
                        return Err(Error::custom(format!(
                            "invalid type: expected {}, got {}",
                            stringify!($ty),
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(raw).map_err(|_| {
                    Error::custom(format!("integer out of range for {}", stringify!($ty)))
                })
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(Error::custom(format!(
                "invalid type: expected f64, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        f64::deserialize(content).map(|v| v as f32)
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::custom(format!(
                "invalid type: expected null, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(Error::custom(format!(
                "invalid type: expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(v) => Ok(v.clone()),
            other => Err(Error::custom(format!(
                "invalid type: expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Str(v) if v.chars().count() == 1 => Ok(v.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "invalid type: expected char, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        T::deserialize(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize(content)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::Seq(items) => {
                        let expected = [$(stringify!($idx)),+].len();
                        if items.len() != expected {
                            return Err(Error::custom(format!(
                                "expected a tuple of {} elements, got {}",
                                expected,
                                items.len()
                            )));
                        }
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "invalid type: expected array, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Renders a map key as a string (JSON object keys are strings).
fn key_to_string(content: &Content) -> Result<String, Error> {
    match content {
        Content::Str(s) => Ok(s.clone()),
        Content::U64(v) => Ok(v.to_string()),
        Content::I64(v) => Ok(v.to_string()),
        other => Err(Error::custom(format!(
            "map key must be a string or integer, got {}",
            other.kind()
        ))),
    }
}

/// Parses a map key back into content (integer-looking keys become
/// numbers, so integer-keyed maps round-trip).
fn key_from_string(key: &str) -> Content {
    if let Ok(v) = key.parse::<u64>() {
        Content::U64(v)
    } else if let Ok(v) = key.parse::<i64>() {
        Content::I64(v)
    } else {
        Content::Str(key.to_string())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.to_content()).expect("unsupported map key"),
                        v.to_content(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize(&key_from_string(k))?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_string(&k.to_content()).expect("unsupported map key"),
                        v.to_content(),
                    )
                })
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::deserialize(&key_from_string(k))?, V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "invalid type: expected object, got {}",
                other.kind()
            ))),
        }
    }
}

impl Content {
    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "array",
            Content::Map(_) => "object",
        }
    }
}

/// Support functions for the derive macro. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Content, Deserialize, Error};

    pub fn expect_map<'a>(
        content: &'a Content,
        ty: &str,
    ) -> Result<&'a [(String, Content)], Error> {
        match content {
            Content::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!(
                "invalid type for {ty}: expected object, got {}",
                other.kind()
            ))),
        }
    }

    pub fn expect_seq<'a>(
        content: &'a Content,
        ty: &str,
        len: usize,
    ) -> Result<&'a [Content], Error> {
        match content {
            Content::Seq(items) if items.len() == len => Ok(items),
            Content::Seq(items) => Err(Error::custom(format!(
                "invalid length for {ty}: expected {len}, got {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "invalid type for {ty}: expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// Looks up a struct field; a missing key deserializes from `Null`
    /// so `Option` fields default to `None` and everything else reports
    /// a missing-field error.
    pub fn struct_field<T: Deserialize>(
        map: &[(String, Content)],
        ty: &str,
        field: &str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == field) {
            Some((_, value)) => {
                T::deserialize(value).map_err(|e| Error::custom(format!("{ty}.{field}: {e}")))
            }
            None => T::deserialize(&Content::Null)
                .map_err(|_| Error::custom(format!("missing field `{field}` in {ty}"))),
        }
    }

    /// Looks up a `#[serde(default)]` struct field: a missing key yields
    /// `Default::default()` instead of a missing-field error, so types
    /// can grow fields without invalidating previously serialized data.
    pub fn struct_field_or_default<T: Deserialize + Default>(
        map: &[(String, Content)],
        ty: &str,
        field: &str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == field) {
            Some((_, value)) => {
                T::deserialize(value).map_err(|e| Error::custom(format!("{ty}.{field}: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Splits an externally tagged enum into `(variant, data)`.
    pub fn expect_enum<'a>(
        content: &'a Content,
        ty: &str,
    ) -> Result<(&'a str, Option<&'a Content>), Error> {
        match content {
            Content::Str(tag) => Ok((tag, None)),
            Content::Map(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::custom(format!(
                "invalid type for enum {ty}: expected string or single-key object, got {}",
                other.kind()
            ))),
        }
    }

    pub fn expect_unit(data: Option<&Content>, variant: &str) -> Result<(), Error> {
        match data {
            None | Some(Content::Null) => Ok(()),
            Some(_) => Err(Error::custom(format!(
                "unexpected data for unit variant {variant}"
            ))),
        }
    }

    pub fn expect_data<'a>(data: Option<&'a Content>, variant: &str) -> Result<&'a Content, Error> {
        data.ok_or_else(|| Error::custom(format!("missing data for variant {variant}")))
    }
}
