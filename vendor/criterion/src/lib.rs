//! Offline micro-benchmark harness exposing the `criterion` API surface
//! this workspace uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Timing is wall-clock via
//! `std::time::Instant` with a calibration pass choosing the iteration
//! count; results print as ns/iter. Statistical analysis, plotting, and
//! baseline comparison are not implemented.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How expensive batch setup output is; sizes the batches for
/// [`Bencher::iter_batched`]. The shim runs one setup per measured
/// routine call regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: large batches would be fine.
    SmallInput,
    /// Large routine input: keep batches small.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
pub struct Criterion {
    /// Target time to spend measuring each benchmark.
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, time: Duration) -> Self {
        self.measurement_time = time;
        self
    }

    /// Sets the nominal sample count (used to cap iterations).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Hook for CLI configuration; the shim has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.into(), self.measurement_time, self.sample_size, f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Criterion's post-run hook; nothing to summarize here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the sample count for the group's benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the group's per-benchmark measurement budget.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(id, self.measurement_time, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: String, budget: Duration, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration to size the real run.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget_iters = (budget.as_nanos() / per_iter.as_nanos()).max(1);
    let iters = budget_iters.min(sample_size.max(1) as u128 * 100) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / iters as f64;
    println!("bench: {id:<55} {ns_per_iter:>14.1} ns/iter (x{iters})");
}

/// Runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, including drop of its output (criterion drops
    /// outputs inside the timed loop too).
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`; neither the setup nor
    /// the drop of routine outputs is timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut outputs: Vec<O> = Vec::with_capacity(self.iters.min(4096) as usize);
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let out = black_box(routine(input));
            elapsed += start.elapsed();
            outputs.push(out);
            // Drop accumulated outputs outside the timed region.
            if outputs.len() == outputs.capacity() {
                outputs.clear();
            }
        }
        drop(outputs);
        self.elapsed = elapsed;
    }

    /// Like `iter_batched` but with per-iteration setup semantics.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
