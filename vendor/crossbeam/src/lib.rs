//! Offline shim exposing the `crossbeam::thread::scope` API surface
//! this workspace uses. Mirrors crossbeam-utils' design: spawned
//! closures have their `'env` lifetime erased, and soundness comes from
//! `scope()` joining every spawned thread before it returns, so no
//! borrow of the environment can outlive the scope call.

pub mod thread {
    //! Scoped threads.

    use std::marker::PhantomData;
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;

    type SharedHandle = Arc<Mutex<Option<JoinHandle<()>>>>;

    /// A scope in which borrowing threads can be spawned.
    pub struct Scope<'env> {
        /// Handles of spawned threads not yet claimed via
        /// [`ScopedJoinHandle::join`]; drained (joined) at scope end.
        handles: Mutex<Vec<SharedHandle>>,
        /// Invariant over `'env`, like crossbeam's scope.
        _env: PhantomData<&'env mut &'env ()>,
    }

    /// A handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        handle: SharedHandle,
        result: Arc<Mutex<Option<T>>>,
        _scope: PhantomData<&'scope ()>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            let handle = self
                .handle
                .lock()
                .unwrap()
                .take()
                .expect("scoped thread already joined");
            handle.join().map(|()| {
                self.result
                    .lock()
                    .unwrap()
                    .take()
                    .expect("scoped thread finished without storing a result")
            })
        }
    }

    impl<'env> Scope<'env> {
        /// Spawns a scoped thread. The closure receives the scope
        /// reference so it can spawn siblings (all call sites in this
        /// workspace ignore it with `|_|`).
        pub fn spawn<'scope, F, T>(&'scope self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'env>) -> T + Send + 'env,
            T: Send + 'env,
        {
            let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
            let thread_result = Arc::clone(&result);
            // The scope is guaranteed to outlive the thread (joined
            // before `scope()` returns), so a raw pointer is sound and
            // sidesteps the borrow being shorter than 'env.
            let scope_ptr = self as *const Scope<'env> as usize;
            let closure = move || {
                let scope: &Scope<'env> = unsafe { &*(scope_ptr as *const Scope<'env>) };
                let value = f(scope);
                *thread_result.lock().unwrap() = Some(value);
            };
            let closure: Box<dyn FnOnce() + Send + 'env> = Box::new(closure);
            // SAFETY: the closure only borrows data alive for 'env, and
            // scope() joins this thread before returning to the caller,
            // i.e. strictly inside 'env.
            let closure: Box<dyn FnOnce() + Send + 'static> =
                unsafe { std::mem::transmute(closure) };
            let handle = std::thread::spawn(closure);
            let shared: SharedHandle = Arc::new(Mutex::new(Some(handle)));
            self.handles.lock().unwrap().push(Arc::clone(&shared));
            ScopedJoinHandle {
                handle: shared,
                result,
                _scope: PhantomData,
            }
        }
    }

    /// Creates a scope for spawning borrowing threads. Every spawned
    /// thread is joined before this returns. Returns `Err` with the
    /// collected payloads if any *unclaimed* thread panicked; a panic in
    /// the closure itself is resumed after all threads are joined.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            handles: Mutex::new(Vec::new()),
            _env: PhantomData,
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&scope)));
        let mut panics: Vec<Box<dyn std::any::Any + Send>> = Vec::new();
        let handles: Vec<SharedHandle> = std::mem::take(&mut *scope.handles.lock().unwrap());
        for shared in handles {
            let handle = shared.lock().unwrap().take();
            if let Some(handle) = handle {
                if let Err(payload) = handle.join() {
                    panics.push(payload);
                }
            }
        }
        match result {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(value) => {
                if panics.is_empty() {
                    Ok(value)
                } else {
                    Err(Box::new(panics))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn unclaimed_threads_are_joined_at_scope_end() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        crate::thread::scope(|s| {
            s.spawn(|_| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                flag.store(true, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}
