//! Offline shim exposing the `parking_lot` API surface this workspace
//! uses (`Mutex` with non-poisoning `lock()`), backed by `std::sync`.

use std::fmt;
use std::sync::MutexGuard as StdMutexGuard;

/// A mutual-exclusion lock whose `lock()` returns the guard directly
/// (no poisoning), matching parking_lot's signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard released on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. A panic in another
    /// holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: guard }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
