//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in. Parses the item token stream by hand (no syn/quote) and
//! emits impls of the content-tree traits. Supports the container
//! attributes this workspace uses (`transparent`, `try_from`, `into`)
//! plus field-level `skip`/`default`; generics are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Default, Debug, Clone)]
struct Attrs {
    transparent: bool,
    skip: bool,
    default: bool,
    try_from: Option<String>,
    into: Option<String>,
}

#[derive(Debug)]
struct Field {
    attrs: Attrs,
    /// `None` for tuple fields.
    name: Option<String>,
}

#[derive(Debug)]
enum Shape {
    Unit,
    /// Tuple struct / tuple variant fields.
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        attrs: Attrs,
        shape: Shape,
    },
    Enum {
        name: String,
        attrs: Attrs,
        variants: Vec<Variant>,
    },
}

/// Extracts the serde-relevant info from a `#[...]` attribute group's
/// inner tokens, merging into `attrs`.
fn merge_serde_attr(tokens: TokenStream, attrs: &mut Attrs) {
    let mut iter = tokens.into_iter();
    let Some(TokenTree::Ident(head)) = iter.next() else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return;
    };
    // Split the serde(...) arguments on top-level commas.
    let mut current: Vec<TokenTree> = Vec::new();
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    for tt in args.stream() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == ',' => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(tt),
        }
    }
    if !current.is_empty() {
        parts.push(current);
    }
    for part in parts {
        let Some(TokenTree::Ident(key)) = part.first() else {
            continue;
        };
        let key = key.to_string();
        let value = part.iter().find_map(|tt| match tt {
            TokenTree::Literal(lit) => {
                let s = lit.to_string();
                Some(s.trim_matches('"').to_string())
            }
            _ => None,
        });
        match key.as_str() {
            "transparent" => attrs.transparent = true,
            "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
            "default" => attrs.default = true,
            "try_from" => attrs.try_from = value,
            "into" => attrs.into = value,
            _ => {}
        }
    }
}

/// Consumes leading `#[...]` attributes from the iterator position,
/// returning parsed serde attrs and the first non-attribute token.
fn take_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Attrs {
    let mut attrs = Attrs::default();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    merge_serde_attr(g.stream(), &mut attrs);
                }
            }
            _ => return attrs,
        }
    }
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Splits a token stream on top-level commas, tracking angle-bracket
/// depth so generic arguments stay together. `<` / `>` arrive as
/// individual `Punct` tokens (a `>>` is two of them); parenthesized and
/// bracketed groups are single `Group` tokens and need no tracking.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                current.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(tt),
        }
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Parses the fields of a brace-delimited (named) body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut iter = part.into_iter().peekable();
            let attrs = take_attrs(&mut iter);
            skip_visibility(&mut iter);
            let name = match iter.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected field name, got {other:?}"),
            };
            // Consume the ':' and the type tokens after it.
            iter.next();
            iter.for_each(drop);
            Field {
                attrs,
                name: Some(name),
            }
        })
        .collect()
}

/// Parses the fields of a parenthesized (tuple) body.
fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut iter = part.into_iter().peekable();
            let attrs = take_attrs(&mut iter);
            skip_visibility(&mut iter);
            iter.for_each(drop);
            Field { attrs, name: None }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level_commas(stream)
        .into_iter()
        .filter(|part| !part.is_empty())
        .map(|part| {
            let mut iter = part.into_iter().peekable();
            let _attrs = take_attrs(&mut iter);
            let name = match iter.next() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("expected variant name, got {other:?}"),
            };
            let shape = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                // `= discriminant` or nothing: a unit variant.
                _ => Shape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let attrs = take_attrs(&mut iter);
    skip_visibility(&mut iter);
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, attrs, shape }
        }
        "enum" => {
            let variants = match iter.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                attrs,
                variants,
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn active_fields(fields: &[Field]) -> Vec<(usize, &Field)> {
    fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.attrs.skip)
        .collect()
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, attrs, shape } => {
            let body = if let Some(into_ty) = &attrs.into {
                format!(
                    "let converted: {into_ty} = \
                     ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
                     ::serde::Serialize::to_content(&converted)"
                )
            } else {
                match shape {
                    Shape::Unit => "::serde::Content::Null".to_string(),
                    Shape::Tuple(fields) => {
                        let active = active_fields(fields);
                        if active.len() == 1 {
                            // Newtype structs serialize as their inner
                            // value, matching serde_json.
                            let (idx, _) = active[0];
                            format!("::serde::Serialize::to_content(&self.{idx})")
                        } else {
                            let items: Vec<String> = active
                                .iter()
                                .map(|(idx, _)| {
                                    format!("::serde::Serialize::to_content(&self.{idx})")
                                })
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                        }
                    }
                    Shape::Named(fields) => {
                        let active = active_fields(fields);
                        if attrs.transparent && active.len() == 1 {
                            let field = active[0].1.name.as_ref().unwrap();
                            format!("::serde::Serialize::to_content(&self.{field})")
                        } else {
                            let entries: Vec<String> = active
                                .iter()
                                .map(|(_, f)| {
                                    let fname = f.name.as_ref().unwrap();
                                    format!(
                                        "(::std::string::String::from(\"{fname}\"), \
                                         ::serde::Serialize::to_content(&self.{fname}))"
                                    )
                                })
                                .collect();
                            format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
                        }
                    }
                }
            };
            (name, body)
        }
        Item::Enum {
            name,
            attrs,
            variants,
        } => {
            let body = if let Some(into_ty) = &attrs.into {
                format!(
                    "let converted: {into_ty} = \
                     ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
                     ::serde::Serialize::to_content(&converted)"
                )
            } else {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            arms.push_str(&format!(
                                "{name}::{vname} => ::serde::Content::Str(\
                                 ::std::string::String::from(\"{vname}\")),\n"
                            ));
                        }
                        Shape::Tuple(fields) => {
                            let binders: Vec<String> =
                                (0..fields.len()).map(|i| format!("f{i}")).collect();
                            let pattern = binders.join(", ");
                            let data = if fields.len() == 1 {
                                "::serde::Serialize::to_content(f0)".to_string()
                            } else {
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                            };
                            arms.push_str(&format!(
                                "{name}::{vname}({pattern}) => ::serde::Content::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 {data})]),\n"
                            ));
                        }
                        Shape::Named(fields) => {
                            let names: Vec<&String> =
                                fields.iter().map(|f| f.name.as_ref().unwrap()).collect();
                            let pattern = names
                                .iter()
                                .map(|n| n.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = names
                                .iter()
                                .map(|n| {
                                    format!(
                                        "(::std::string::String::from(\"{n}\"), \
                                         ::serde::Serialize::to_content({n}))"
                                    )
                                })
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{vname} {{ {pattern} }} => ::serde::Content::Map(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), \
                                 ::serde::Content::Map(::std::vec![{}]))]),\n",
                                entries.join(", ")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            };
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// Expression building one struct-like set of fields from a map
/// expression `map_expr` (named) or seq (tuple), as `Ctor { .. }`.
fn build_named(ctor: &str, ty_label: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fname = f.name.as_ref().unwrap();
            if f.attrs.skip {
                format!("{fname}: ::std::default::Default::default()")
            } else if f.attrs.default {
                format!(
                    "{fname}: ::serde::__private::struct_field_or_default(map, \
                     \"{ty_label}\", \"{fname}\")?"
                )
            } else {
                format!(
                    "{fname}: ::serde::__private::struct_field(map, \"{ty_label}\", \
                     \"{fname}\")?"
                )
            }
        })
        .collect();
    format!("{ctor} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, attrs, shape } => {
            let body = if let Some(from_ty) = &attrs.try_from {
                format!(
                    "let inner: {from_ty} = ::serde::Deserialize::deserialize(content)?;\n\
                     ::std::convert::TryFrom::try_from(inner).map_err(|e| \
                     ::serde::Error::custom(::std::format!(\"{{}}\", e)))"
                )
            } else {
                match shape {
                    Shape::Unit => format!("::std::result::Result::Ok({name})"),
                    Shape::Tuple(fields) => {
                        let active = active_fields(fields);
                        if active.len() == 1 && fields.len() == 1 {
                            format!(
                                "::std::result::Result::Ok({name}(\
                                 ::serde::Deserialize::deserialize(content)?))"
                            )
                        } else {
                            let len = active.len();
                            let mut inits = vec![String::new(); fields.len()];
                            let mut next = 0usize;
                            for (idx, f) in fields.iter().enumerate() {
                                if f.attrs.skip {
                                    inits[idx] = "::std::default::Default::default()".to_string();
                                } else {
                                    inits[idx] = format!(
                                        "::serde::Deserialize::deserialize(&items[{next}])?"
                                    );
                                    next += 1;
                                }
                            }
                            format!(
                                "let items = ::serde::__private::expect_seq(\
                                 content, \"{name}\", {len})?;\n\
                                 ::std::result::Result::Ok({name}({}))",
                                inits.join(", ")
                            )
                        }
                    }
                    Shape::Named(fields) => {
                        let active = active_fields(fields);
                        if attrs.transparent && active.len() == 1 {
                            let field = active[0].1.name.as_ref().unwrap();
                            let others: Vec<String> = fields
                                .iter()
                                .filter(|f| f.attrs.skip)
                                .map(|f| {
                                    format!(
                                        "{}: ::std::default::Default::default()",
                                        f.name.as_ref().unwrap()
                                    )
                                })
                                .collect();
                            let rest = if others.is_empty() {
                                String::new()
                            } else {
                                format!(", {}", others.join(", "))
                            };
                            format!(
                                "::std::result::Result::Ok({name} {{ {field}: \
                                 ::serde::Deserialize::deserialize(content)?{rest} }})"
                            )
                        } else {
                            format!(
                                "let map = ::serde::__private::expect_map(content, \
                                 \"{name}\")?;\n::std::result::Result::Ok({})",
                                build_named(name, name, fields)
                            )
                        }
                    }
                }
            };
            (name, body)
        }
        Item::Enum {
            name,
            attrs,
            variants,
        } => {
            let body = if let Some(from_ty) = &attrs.try_from {
                format!(
                    "let inner: {from_ty} = ::serde::Deserialize::deserialize(content)?;\n\
                     ::std::convert::TryFrom::try_from(inner).map_err(|e| \
                     ::serde::Error::custom(::std::format!(\"{{}}\", e)))"
                )
            } else {
                let mut arms = String::new();
                for v in variants {
                    let vname = &v.name;
                    let label = format!("{name}::{vname}");
                    match &v.shape {
                        Shape::Unit => {
                            arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 ::serde::__private::expect_unit(data, \"{label}\")?;\n\
                                 ::std::result::Result::Ok({name}::{vname})\n}}\n"
                            ));
                        }
                        Shape::Tuple(fields) => {
                            if fields.len() == 1 {
                                arms.push_str(&format!(
                                    "\"{vname}\" => {{\n\
                                     let data = ::serde::__private::expect_data(\
                                     data, \"{label}\")?;\n\
                                     ::std::result::Result::Ok({name}::{vname}(\
                                     ::serde::Deserialize::deserialize(data)?))\n}}\n"
                                ));
                            } else {
                                let len = fields.len();
                                let items: Vec<String> = (0..len)
                                    .map(|i| {
                                        format!("::serde::Deserialize::deserialize(&items[{i}])?")
                                    })
                                    .collect();
                                arms.push_str(&format!(
                                    "\"{vname}\" => {{\n\
                                     let data = ::serde::__private::expect_data(\
                                     data, \"{label}\")?;\n\
                                     let items = ::serde::__private::expect_seq(\
                                     data, \"{label}\", {len})?;\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n}}\n",
                                    items.join(", ")
                                ));
                            }
                        }
                        Shape::Named(fields) => {
                            arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let data = ::serde::__private::expect_data(\
                                 data, \"{label}\")?;\n\
                                 let map = ::serde::__private::expect_map(\
                                 data, \"{label}\")?;\n\
                                 ::std::result::Result::Ok({})\n}}\n",
                                build_named(&format!("{name}::{vname}"), &label, fields)
                            ));
                        }
                    }
                }
                format!(
                    "let (tag, data) = ::serde::__private::expect_enum(content, \
                     \"{name}\")?;\nmatch tag {{\n{arms}\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"unknown variant `{{}}` for {name}\", other))),\n}}"
                )
            };
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(content: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derived Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derived Deserialize impl failed to parse")
}
