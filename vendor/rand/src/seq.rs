//! Sequence-related extensions (`SliceRandom`).

use crate::{Rng, RngCore};

/// rand 0.8's `gen_index`: draw through `u32` when the bound fits, so
/// small-slice operations consume exactly one 32-bit word.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= (u32::MAX as usize) {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Extension trait on slices for random selection.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Shuffles the slice in place (Fisher–Yates, matching rand 0.8).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }
}
