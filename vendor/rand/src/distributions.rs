//! The `Standard` distribution and uniform range sampling, matching
//! rand 0.8.5 draw-for-draw.

use crate::RngCore;

/// A distribution of values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard (full-width / unit-interval) distribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

macro_rules! standard_signed {
    ($($ty:ty => $unsigned:ty),*) => {$(
        impl Distribution<$ty> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                let unsigned: $unsigned = Distribution::<$unsigned>::sample(self, rng);
                unsigned as $ty
            }
        }
    )*};
}

standard_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: sign bit of a u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Multiply-based [0, 1): 53 high bits of a u64.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

pub mod uniform {
    //! Uniform range sampling (the `gen_range` machinery).

    use crate::{Rng, RngCore};
    use core::ops::{Range, RangeInclusive};

    /// Helper trait: types `gen_range` can sample.
    pub trait SampleUniform: Sized {
        /// Samples uniformly from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Samples uniformly from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range types accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "cannot sample empty range");
            T::sample_single_inclusive(start, end, rng)
        }
    }

    /// Widening multiply returning `(high, low)` halves.
    trait WideningMultiply: Sized {
        fn wmul(self, other: Self) -> (Self, Self);
    }

    impl WideningMultiply for u32 {
        #[inline]
        fn wmul(self, other: Self) -> (Self, Self) {
            let tmp = (self as u64) * (other as u64);
            ((tmp >> 32) as u32, tmp as u32)
        }
    }

    impl WideningMultiply for u64 {
        #[inline]
        fn wmul(self, other: Self) -> (Self, Self) {
            let tmp = (self as u128) * (other as u128);
            ((tmp >> 64) as u64, tmp as u64)
        }
    }

    // rand 0.8.5 `uniform_int_impl!`: $ty sampled through $unsigned
    // (same-width cast) drawing $u_large words. u8/u16 reject with an
    // exact modulus zone; wider types use the leading-zeros
    // approximation. The `range == 0` branch of the inclusive sampler
    // returns a full-width draw.
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    let range = high.wrapping_sub(low) as $unsigned as $u_large;
                    let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                        let unsigned_max: $u_large = <$u_large>::MAX;
                        let ints_to_reject = (unsigned_max - range + 1) % range;
                        unsigned_max - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = rng.gen();
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                    if range == 0 {
                        // The full integer range: every value is valid.
                        return rng.gen();
                    }
                    let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                        let unsigned_max: $u_large = <$u_large>::MAX;
                        let ints_to_reject = (unsigned_max - range + 1) % range;
                        unsigned_max - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = rng.gen();
                        let (hi, lo) = v.wmul(range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl! { u8, u8, u32 }
    uniform_int_impl! { u16, u16, u32 }
    uniform_int_impl! { u32, u32, u32 }
    uniform_int_impl! { u64, u64, u64 }
    uniform_int_impl! { usize, usize, usize }
    uniform_int_impl! { i8, u8, u32 }
    uniform_int_impl! { i16, u16, u32 }
    uniform_int_impl! { i32, u32, u32 }
    uniform_int_impl! { i64, u64, u64 }
    uniform_int_impl! { isize, usize, usize }

    impl WideningMultiply for usize {
        #[inline]
        fn wmul(self, other: Self) -> (Self, Self) {
            let (hi, lo) = (self as u64).wmul(other as u64);
            (hi as usize, lo as usize)
        }
    }

    impl SampleUniform for f64 {
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let scale = high - low;
            loop {
                // A value in [1, 2) from the 52 mantissa bits, shifted
                // down to [0, 1) — rand 0.8.5's UniformFloat.
                let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res < high {
                    return res;
                }
            }
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self {
            // rand 0.8.5 routes inclusive float ranges through the
            // distribution sampler: scale chosen so max mantissa hits
            // `high`, with downward adjustment if it overshoots.
            let max_rand = 1.0 - f64::EPSILON / 2.0;
            let mut scale = (high - low) / max_rand;
            while scale * max_rand + low > high {
                scale = f64::from_bits(scale.to_bits() - 1);
            }
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let value0_1 = value1_2 - 1.0;
            scale * value0_1 + low
        }
    }

    impl SampleUniform for f32 {
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            let scale = high - low;
            loop {
                let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res < high {
                    return res;
                }
            }
        }

        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self {
            let max_rand = 1.0 - f32::EPSILON / 2.0;
            let mut scale = (high - low) / max_rand;
            while scale * max_rand + low > high {
                scale = f32::from_bits(scale.to_bits() - 1);
            }
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | (127u32 << 23));
            let value0_1 = value1_2 - 1.0;
            scale * value0_1 + low
        }
    }
}
