//! ChaCha block function (RFC 7539 core, 64-bit counter variant as used
//! by rand_chacha 0.3).

/// "expand 32-byte k"
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha core with a 64-bit block counter in words 12..14 and a
/// 64-bit stream id in words 14..16.
#[derive(Clone, Debug)]
pub struct ChaChaCore {
    /// Key words (LE from the 32-byte seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// 64-bit stream id (always 0 for `StdRng::from_seed`).
    stream: u64,
    /// Double rounds (6 for ChaCha12).
    double_rounds: u32,
}

impl ChaChaCore {
    pub fn new(seed: [u8; 32], double_rounds: u32) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaChaCore {
            key,
            counter: 0,
            stream: 0,
            double_rounds,
        }
    }

    /// Generates the next 16-word block and advances the counter.
    pub fn generate(&mut self, out: &mut [u32; 16]) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;

        let mut working = state;
        for _ in 0..self.double_rounds {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
    }
}
