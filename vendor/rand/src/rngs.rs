//! The standard generator.

use crate::chacha::ChaChaCore;
use crate::{RngCore, SeedableRng};

/// The standard RNG, matching rand 0.8's `StdRng` (ChaCha12).
///
/// Word-stream semantics are those of rand_core's `BlockRng`: the key
/// stream is a flat sequence of little-endian `u32` words; `next_u32`
/// consumes one word and `next_u64` consumes the next two words as
/// `low | high << 32`, including across block boundaries. (rand_chacha
/// buffers four blocks at a time, but the flattened word stream is
/// identical, so a 16-word buffer reproduces it exactly.)
#[derive(Clone, Debug)]
pub struct StdRng {
    core: ChaChaCore,
    buf: [u32; 16],
    /// Next unconsumed word; 16 means the buffer is exhausted.
    index: usize,
}

impl StdRng {
    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.core.generate(&mut self.buf);
            self.index = 0;
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng {
            core: ChaChaCore::new(seed, 6),
            buf: [0u32; 16],
            index: 16,
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let low = self.next_word() as u64;
        let high = self.next_word() as u64;
        (high << 32) | low
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_word().to_le_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let word = self.next_word().to_le_bytes();
            tail.copy_from_slice(&word[..tail.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn u64_is_two_words_low_first() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let low = a.next_u32() as u64;
        let high = a.next_u32() as u64;
        assert_eq!(b.next_u64(), (high << 32) | low);
    }

    #[test]
    fn standard_f64_uses_high_53_bits() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let raw = a.next_u64();
        let f: f64 = b.gen();
        assert_eq!(f, (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64));
    }
}
