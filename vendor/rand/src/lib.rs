//! Offline reimplementation of the subset of the `rand` 0.8 API this
//! workspace uses, with bit-identical output streams.
//!
//! The container this repository builds in has no access to crates.io, so
//! the handful of external crates the workspace depends on are vendored
//! under `vendor/`. For `rand` that vendoring must be *exact*: every
//! committed artifact under `results/` was produced by seeded `StdRng`
//! streams, and the regeneration check (`repro --json`) diffs bit-for-bit.
//!
//! What is reproduced faithfully from rand 0.8.5 + rand_chacha 0.3:
//!
//! * `StdRng` = ChaCha with 12 rounds, 64-bit block counter, zero stream.
//! * `SeedableRng::seed_from_u64` = PCG32 seed expansion.
//! * `BlockRng` word-stream semantics: `next_u32` consumes one 32-bit
//!   word, `next_u64` consumes two (low word first), including across
//!   block boundaries.
//! * `gen_range` = Lemire widening-multiply rejection (modulus rejection
//!   for `u8`/`u16`), `sample_single_inclusive` with the `range == 0`
//!   full-width shortcut.
//! * Float sampling: `Standard` uses the high 53 bits of a `u64`;
//!   ranged floats use the 1..2 mantissa trick.
//! * `SliceRandom::choose` draws a `u32`-ranged index when the slice
//!   length fits in `u32`.

mod chacha;
pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::uniform::{SampleRange, SampleUniform};
pub use distributions::Standard;

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32 and instantiates the
    /// generator (identical to rand_core 0.6).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&Standard, self)
    }

    /// Samples a value uniformly from the given range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "p={p} is outside range [0.0, 1.0]"
        );
        // rand 0.8: Bernoulli via 64-bit fixed-point threshold.
        if p == 1.0 {
            return true;
        }
        let p_int = (p * (1u64 << 63) as f64 * 2.0) as u64;
        self.next_u64() < p_int
    }

    /// Fills a slice with values from the `Standard` distribution.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.try_fill(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types a generator can fill in place.
pub trait Fill {
    /// Fills `self` from `rng`.
    fn try_fill<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn try_fill<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Prelude-style re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
